"""Tests for crash injection and the consistency checkers.

Positive direction: every barrier design, at arbitrary crash points,
leaves NVRAM in a state the checkers accept.  Negative direction: the
checkers actually detect violations when fed corrupted histories --
a checker that cannot fail proves nothing.
"""

import pytest

from repro.mem.nvram import NVRAMImage, PersistRecord
from repro.recovery import (
    ConsistencyViolation,
    check_bsp_recoverable,
    check_epoch_order,
    check_queue_recoverable,
    run_with_crash,
)
from repro.recovery.crash import CrashOutcome, EpochRecord
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.apps import app_programs
from repro.workloads.micro import QueueWorkload


def checker_machine(design=BarrierDesign.LB_PP,
                    model=PersistencyModel.BEP, **overrides):
    config = MachineConfig.tiny(
        barrier_design=design, persistency=model, **overrides
    )
    return Multicore(config, track_values=True, track_persist_order=True,
                     keep_epoch_log=True)


# ----------------------------------------------------------------------
# Positive: simulated machines never violate the invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("design", list(BarrierDesign))
@pytest.mark.parametrize("crash_cycle", [800, 8000, 60000])
def test_bep_epoch_order_holds_at_any_crash_point(design, crash_cycle):
    m = checker_machine(design)
    queues = [QueueWorkload(thread_id=t, seed=13) for t in range(2)]
    outcome = run_with_crash(m, [q.ops(50) for q in queues], crash_cycle)
    check_epoch_order(outcome)
    for q in queues:
        check_queue_recoverable(outcome, q)


@pytest.mark.parametrize("crash_cycle", [3000, 30000])
def test_bsp_partially_persisted_epochs_are_undoable(crash_cycle):
    m = checker_machine(BarrierDesign.LB_PP, PersistencyModel.BSP,
                        bsp_epoch_stores=40)
    outcome = run_with_crash(
        m, app_programs("intruder", 2, 600, seed=5), crash_cycle
    )
    check_epoch_order(outcome)
    check_bsp_recoverable(outcome)


def test_crash_requires_tracking_machine():
    m = Multicore(MachineConfig.tiny())
    with pytest.raises(ValueError):
        run_with_crash(m, [[]], 100)


def test_queue_checker_accepts_empty_durable_state():
    m = checker_machine()
    queue = QueueWorkload(thread_id=0, seed=1)
    outcome = run_with_crash(m, [queue.ops(10)], 5)  # crash immediately
    assert check_queue_recoverable(outcome, queue) == 0


# ----------------------------------------------------------------------
# Negative: corrupted histories are rejected
# ----------------------------------------------------------------------
def synthetic_outcome(history, epochs, log_entries=None):
    image = NVRAMImage(track_order=True)
    image.history = history
    for record in history:
        image.last_persist[record.line] = record
    image.log_entries = log_entries or {}
    return CrashOutcome(crash_cycle=10_000, image=image, epochs=epochs)


def epoch_record(core, seq, lines, sources=()):
    return EpochRecord(
        core_id=core, seq=seq, all_lines=frozenset(lines),
        source_keys=frozenset(sources), persisted=False,
    )


def test_checker_detects_program_order_violation():
    # Epoch (0,1) persists a line before epoch (0,0) is fully durable.
    epochs = {
        (0, 0): epoch_record(0, 0, {0x100, 0x140}),
        (0, 1): epoch_record(0, 1, {0x200}),
    }
    history = [
        PersistRecord(0, 10, 0x100, 0, 0, "data"),
        PersistRecord(1, 20, 0x200, 0, 1, "data"),  # (0,0) incomplete!
        PersistRecord(2, 30, 0x140, 0, 0, "data"),
    ]
    with pytest.raises(ConsistencyViolation):
        check_epoch_order(synthetic_outcome(history, epochs))


def test_checker_detects_idt_edge_violation():
    # Core 1's epoch depends on core 0's, but persists first.
    epochs = {
        (0, 0): epoch_record(0, 0, {0x100}),
        (1, 0): epoch_record(1, 0, {0x200}, sources={(0, 0)}),
    }
    history = [
        PersistRecord(0, 10, 0x200, 1, 0, "data"),
        PersistRecord(1, 20, 0x100, 0, 0, "data"),
    ]
    with pytest.raises(ConsistencyViolation):
        check_epoch_order(synthetic_outcome(history, epochs))


def test_checker_detects_transitive_violation():
    # (2,0) depends on (1,0) depends on (0,0); (0,0) incomplete.
    epochs = {
        (0, 0): epoch_record(0, 0, {0x100}),
        (1, 0): epoch_record(1, 0, {0x200}, sources={(0, 0)}),
        (2, 0): epoch_record(2, 0, {0x300}, sources={(1, 0)}),
    }
    history = [
        PersistRecord(0, 5, 0x200, 1, 0, "data"),
    ]
    with pytest.raises(ConsistencyViolation):
        check_epoch_order(synthetic_outcome(history, epochs))
    # And the valid order passes.
    history = [
        PersistRecord(0, 5, 0x100, 0, 0, "data"),
        PersistRecord(1, 6, 0x200, 1, 0, "data"),
        PersistRecord(2, 7, 0x300, 2, 0, "data"),
    ]
    assert check_epoch_order(synthetic_outcome(history, epochs)) == 3


def test_checker_accepts_valid_interleaving():
    epochs = {
        (0, 0): epoch_record(0, 0, {0x100}),
        (1, 0): epoch_record(1, 0, {0x200}),
    }
    history = [
        PersistRecord(0, 10, 0x200, 1, 0, "data"),
        PersistRecord(1, 20, 0x100, 0, 0, "data"),
    ]
    assert check_epoch_order(synthetic_outcome(history, epochs)) == 2


def test_bsp_checker_detects_unlogged_partial_epoch():
    epochs = {
        (0, 0): epoch_record(0, 0, {0x100, 0x140}),
    }
    history = [
        PersistRecord(0, 10, 0x100, 0, 0, "data"),  # partial, no log
    ]
    with pytest.raises(ConsistencyViolation):
        check_bsp_recoverable(synthetic_outcome(history, epochs))


def test_bsp_checker_accepts_logged_partial_epoch():
    epochs = {
        (0, 0): epoch_record(0, 0, {0x100, 0x140}),
    }
    log_line = 0xF000_0000
    history = [
        PersistRecord(0, 5, log_line, 0, 0, "log"),
        PersistRecord(1, 10, 0x100, 0, 0, "data"),
    ]
    outcome = synthetic_outcome(
        history, epochs, log_entries={log_line: (0x100, {0: "old"})}
    )
    assert check_bsp_recoverable(outcome) == 1


def test_bsp_checker_ignores_fully_durable_epochs():
    epochs = {
        (0, 0): epoch_record(0, 0, {0x100}),
    }
    history = [
        PersistRecord(0, 10, 0x100, 0, 0, "data"),
    ]
    assert check_bsp_recoverable(synthetic_outcome(history, epochs)) == 0


def test_queue_checker_detects_exposed_torn_entry():
    """A durable head pointing at an entry whose body never persisted
    must be flagged -- this is exactly the inconsistency the Figure 10
    barrier placement prevents."""
    m = checker_machine()
    queue = QueueWorkload(thread_id=0, seed=1)
    outcome = run_with_crash(m, [queue.ops(20)], 200_000)
    # Forge a durable head one past what actually persisted.
    head_line = queue.head_addr & ~63
    values = outcome.image.values.setdefault(head_line, {})
    tag, tid, count = values.get(queue.head_addr - head_line,
                                 ("head", 0, 0))
    values[queue.head_addr - head_line] = ("head", tid, count + 7)
    with pytest.raises(ConsistencyViolation):
        check_queue_recoverable(outcome, queue)
