"""Tests for address mapping and the 2D-mesh latency model."""

from repro.mem.address import AddressMap
from repro.mem.interconnect import Mesh
from repro.sim.config import MachineConfig


def test_bank_interleaving_is_line_granular():
    config = MachineConfig.paper()
    amap = AddressMap(config)
    banks = [amap.bank_of(i * 64) for i in range(config.llc_banks * 2)]
    assert banks[: config.llc_banks] == list(range(config.llc_banks))
    assert banks[config.llc_banks:] == list(range(config.llc_banks))


def test_mc_interleaving_covers_all_controllers():
    config = MachineConfig.paper()
    amap = AddressMap(config)
    mcs = {amap.mc_of(i * 64) for i in range(64)}
    assert mcs == set(range(config.num_memory_controllers))


def test_same_line_same_bank_and_mc():
    config = MachineConfig.small()
    amap = AddressMap(config)
    line = amap.line_of(0xDEADBEEF)
    assert amap.bank_of(line) == amap.bank_of(line)
    assert amap.line_of(line + 63) == line


def test_region_classification():
    config = MachineConfig.paper()
    amap = AddressMap(config)
    assert amap.is_log_address(config.log_region_base)
    assert not amap.is_log_address(config.log_region_base - 64)
    assert amap.is_checkpoint_address(config.checkpoint_region_base)
    assert not amap.is_checkpoint_address(config.log_region_base)


def test_mesh_latency_zero_hops_is_router_only():
    config = MachineConfig.paper()
    mesh = Mesh(config)
    assert mesh.latency(0, 0) == config.router_latency


def test_mesh_latency_symmetric_and_manhattan():
    config = MachineConfig.paper()
    mesh = Mesh(config)
    # 4 rows x 8 cols; tiles 0 and 9 are 1 row + 1 col apart.
    expected = 2 * config.hop_latency + 3 * config.router_latency
    assert mesh.latency(0, 9) == expected
    assert mesh.latency(9, 0) == expected


def test_mesh_corner_mcs_distinct():
    config = MachineConfig.paper()
    mesh = Mesh(config)
    tiles = {mesh.tile_of_mc(i) for i in range(4)}
    assert len(tiles) == 4


def test_broadcast_reaches_farthest_bank():
    config = MachineConfig.paper()
    mesh = Mesh(config)
    bcast = mesh.broadcast_from_core(0)
    assert bcast == max(
        mesh.core_to_bank(0, b) for b in range(config.llc_banks)
    )


def test_core_to_core_consistency():
    config = MachineConfig.small()
    mesh = Mesh(config)
    for a in range(config.num_cores):
        for b in range(config.num_cores):
            assert mesh.core_to_core(a, b) == mesh.core_to_core(b, a)
            if a == b:
                assert mesh.core_to_core(a, b) == config.router_latency


def test_tiny_single_row_mesh():
    config = MachineConfig.tiny()
    mesh = Mesh(config)
    assert mesh.rows == 1
    assert mesh.latency(0, 1) == config.hop_latency + 2 * config.router_latency
