"""Soundness of the epoch-granular fast-forward drain engine.

The fast-forward session (cpu/processor.py) claims to be
*observationally invisible*: any stretch of the write-buffer drain it
advances analytically must leave stats, cycle counts, the NVRAM image,
and the persist order byte-identical to the event-per-op reference
engine (``REPRO_SLOW_ENGINE=1``).  These tests attack that claim from
three sides:

* randomized interleavings -- serving and pingpong program prefixes
  across seeds and core counts, fast vs reference digests;
* the guard predicates, one by one -- a conflict in the window, a line
  still tagged by an unpersisted (flushing) epoch, and a configured
  fault injector must each force the session to refuse or fall back,
  without perturbing the outcome;
* the counters -- fast-forward diagnostics are plain attributes, never
  digest inputs, so a fast run and a reference run of the same program
  still digest identically even though only one of them fast-forwards.
"""

import pytest

from repro.harness.bench import ff_counters, reference_mode
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.sim.digest import run_digest, state_digest
from repro.sim.faults import FaultConfig
from repro.system import Multicore
from repro.workloads.micro import make_benchmark


def _programs(benchmark, config, seed, transactions, **kwargs):
    return [
        list(
            make_benchmark(
                benchmark,
                thread_id=tid,
                seed=seed,
                line_size=config.line_size,
                **kwargs,
            ).ops(transactions)
        )
        for tid in range(config.num_cores)
    ]


def _fast_and_reference(config, programs):
    """Run the same programs both ways; return (fast machine, digests).

    Fast mode is forced explicitly so the comparison stays meaningful
    when the whole suite runs under ``REPRO_SLOW_ENGINE=1``.
    """
    with reference_mode(False):
        machine = Multicore(config, track_values=True,
                            track_persist_order=True)
        result = machine.run([list(p) for p in programs])
    fast_digest = state_digest(machine, result)
    with reference_mode():
        ref_machine = Multicore(
            config, track_values=True, track_persist_order=True
        )
        ref_result = ref_machine.run([list(p) for p in programs])
        ref_digest = state_digest(ref_machine, ref_result)
    return machine, fast_digest, ref_digest


# ----------------------------------------------------------------------
# Randomized interleavings: fast == reference, digest for digest
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [2, 11, 29])
def test_serving_prefix_digest_parity(seed):
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP,
        barrier_design=BarrierDesign.LB_PP,
        num_cores=1,
    )
    programs = _programs("serving", config, seed, 120)
    machine, fast, ref = _fast_and_reference(config, programs)
    assert fast == ref
    assert ff_counters(machine)["stores"] > 0


@pytest.mark.parametrize("seed", [3, 17])
@pytest.mark.parametrize("cores,design", [
    (2, BarrierDesign.LB_PP),
    (2, BarrierDesign.LB_IDT),
])
def test_pingpong_prefix_digest_parity(seed, cores, design):
    # The contended extreme: both cores of a pair hammer shared mailbox
    # lines, so sessions constantly abort mid-burst on foreign tags and
    # re-enter -- the interleaving stress case for re-materialization.
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP,
        barrier_design=design,
        num_cores=cores,
    )
    programs = _programs("pingpong", config, seed, 80)
    machine, fast, ref = _fast_and_reference(config, programs)
    assert fast == ref
    counters = ff_counters(machine)
    assert counters["stores"] > 0
    assert counters["fallbacks"] > 0


@pytest.mark.parametrize("model", [
    PersistencyModel.EP,
    PersistencyModel.BSP,
])
def test_stalling_models_digest_parity(model):
    # EP stalls at every barrier and BSP closes epochs by store count:
    # both interleave drain bursts with flush traffic, exercising the
    # session's stop/until and flush-in-window exits.
    config = MachineConfig.tiny(
        persistency=model,
        barrier_design=BarrierDesign.LB_PP,
        num_cores=2,
    )
    programs = _programs("queue", config, 5, 60)
    machine, fast, ref = _fast_and_reference(config, programs)
    assert fast == ref


# ----------------------------------------------------------------------
# Guard predicates, one by one
# ----------------------------------------------------------------------
def test_faults_configured_refuses_every_session():
    # Fault decisions are keyed by splitmix64 coordinates that include
    # per-event attempt counts; fast-forwarding could shift a draw, so a
    # configured injector (even an all-zero one) disables the engine.
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP,
        barrier_design=BarrierDesign.LB_PP,
        num_cores=1,
    )
    programs = _programs("serving", config, 7, 60)
    faults = FaultConfig(seed=9)
    with reference_mode(False):
        machine = Multicore(config, track_values=True,
                            track_persist_order=True, faults=faults)
        result = machine.run([list(p) for p in programs])
    counters = ff_counters(machine)
    assert counters["stores"] == 0
    assert counters["batches"] == 0
    assert counters["fallbacks"] > 0
    # The refusal is also invisible: same digest as the reference
    # engine under the same (all-zero) fault plan.
    with reference_mode():
        ref_machine = Multicore(config, track_values=True,
                                track_persist_order=True,
                                faults=FaultConfig(seed=9))
        ref_result = ref_machine.run([list(p) for p in programs])
    assert state_digest(machine, result) == state_digest(
        ref_machine, ref_result
    )


def test_foreign_tag_refuses_the_store():
    # The epoch-tag probe is the conflict *and* flush-in-window guard: a
    # line whose previous version belongs to any unpersisted epoch is
    # still in the tag map, so ff_store_try must return -1 and leave no
    # trace.  Stage it directly: core 1 dirties a line under its epoch,
    # then core 0's session asks for the same line.
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP,
        barrier_design=BarrierDesign.LB_PP,
        num_cores=2,
    )
    with reference_mode(False):
        machine = Multicore(config)
    line = 0x0C00_0000
    done = []
    machine.engine.schedule_call(
        0, lambda: machine.store(
            1, line, None, machine.managers[1].current_or_new(),
            on_done=done.append,
        )
    )
    machine.engine.run()
    assert done, "staging store never completed"
    assert line in machine._epoch_tags
    epoch0 = machine.managers[0].current_or_new()
    tags_before = dict(machine._epoch_tags)
    assert machine.ff_store_try(0, line, None, epoch0) == -1
    assert machine._epoch_tags == tags_before
    assert not epoch0.lines


def test_contended_run_falls_back_and_recovers():
    # End-to-end version of the conflict guard: full-rate pingpong
    # forces mid-session fallbacks, after which sessions must re-enter
    # and keep absorbing the uncontended payload stores.
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP,
        barrier_design=BarrierDesign.LB_PP,
        num_cores=2,
    )
    programs = _programs("pingpong", config, 13, 60, conflict_rate=1.0)
    machine, fast, ref = _fast_and_reference(config, programs)
    assert fast == ref
    counters = ff_counters(machine)
    assert counters["fallbacks"] > 0
    assert counters["stores"] > 0


def test_ep_flush_stalls_fall_back():
    # Under EP every barrier waits for the closed epoch to persist, so
    # drains regularly start while flush handshakes are in flight; the
    # session must yield those windows to the event-per-op path.
    config = MachineConfig.tiny(
        persistency=PersistencyModel.EP,
        barrier_design=BarrierDesign.LB_PP,
        num_cores=2,
    )
    programs = _programs("queue", config, 5, 60)
    machine, fast, ref = _fast_and_reference(config, programs)
    assert fast == ref
    assert ff_counters(machine)["fallbacks"] > 0


# ----------------------------------------------------------------------
# Counters are diagnostics, not state
# ----------------------------------------------------------------------
def test_ff_counters_never_reach_the_digest():
    # A reference run never fast-forwards, so if the counters leaked
    # into the digest the two modes could not match -- this pins the
    # invariant the parity tests above rely on.
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP,
        barrier_design=BarrierDesign.LB_PP,
        num_cores=1,
    )
    programs = _programs("serving", config, 19, 80)
    machine, fast, ref = _fast_and_reference(config, programs)
    assert ff_counters(machine)["stores"] > 0  # fast run did fast-forward
    assert fast == ref                          # ...and it cannot be seen
