"""Tests for epoch lifecycle and the per-core epoch manager."""

import pytest

from repro.core.epoch import Epoch, EpochManager, EpochStatus
from repro.sim.engine import Engine
from repro.sim.stats import StatDomain


def make_manager(max_inflight=8):
    engine = Engine()
    return engine, EpochManager(0, engine, StatDomain("core0"), max_inflight)


def test_current_created_lazily():
    _, mgr = make_manager()
    assert mgr.current is None
    epoch = mgr.current_or_new()
    assert mgr.current is epoch
    assert epoch.status is EpochStatus.ONGOING
    assert mgr.total_epochs == 1


def test_tag_store_counts_pending():
    _, mgr = make_manager()
    epoch = mgr.tag_store()
    assert epoch.pending_stores == 1
    mgr.store_drained(epoch)
    assert epoch.pending_stores == 0
    assert epoch.num_stores == 1


def test_close_with_no_stores_is_noop():
    _, mgr = make_manager()
    mgr.current_or_new()
    assert mgr.close_current() is None
    assert mgr.current is not None  # epoch stays open for future stores


def test_close_completes_drained_epoch():
    _, mgr = make_manager()
    epoch = mgr.tag_store()
    mgr.store_drained(epoch)
    closed = mgr.close_current()
    assert closed is epoch
    assert epoch.status is EpochStatus.COMPLETE
    assert mgr.current is None


def test_close_waits_for_pending_stores():
    _, mgr = make_manager()
    epoch = mgr.tag_store()
    mgr.close_current()
    assert epoch.status is EpochStatus.CLOSED
    mgr.store_drained(epoch)
    assert epoch.status is EpochStatus.COMPLETE


def test_completion_callbacks_fire_once():
    _, mgr = make_manager()
    fired = []
    epoch = mgr.tag_store()
    epoch.on_complete(lambda: fired.append("cb"))
    mgr.close_current()
    mgr.store_drained(epoch)
    assert fired == ["cb"]
    epoch.on_complete(lambda: fired.append("late"))
    assert fired == ["cb", "late"]  # immediate when already complete


def test_window_limit():
    _, mgr = make_manager(max_inflight=2)
    e0 = mgr.tag_store()
    mgr.store_drained(e0)
    mgr.close_current()
    mgr.tag_store()
    assert not mgr.can_open_epoch()


def test_split_moves_pending_stores_to_remainder():
    _, mgr = make_manager()
    epoch = mgr.tag_store()
    epoch.lines.add(0x1000)
    prefix = mgr.split_current()
    assert prefix is epoch
    # The in-flight store belongs to the remainder (section 3.3), so the
    # prefix completes immediately.
    assert prefix.status is EpochStatus.COMPLETE
    assert prefix.pending_stores == 0
    remainder = mgr.current
    assert remainder is not None
    assert remainder.pending_stores == 1
    assert remainder.split_from == prefix.seq
    # The redirect routes the in-flight store's completion.
    assert prefix.resolve() is remainder
    mgr.store_drained(prefix)
    assert remainder.pending_stores == 0


def test_split_without_ongoing_epoch_returns_none():
    _, mgr = make_manager()
    assert mgr.split_current() is None


def test_redirect_chains_resolve():
    _, mgr = make_manager()
    e0 = mgr.tag_store()
    mgr.split_current()
    e1 = mgr.current
    mgr.split_current()
    e2 = mgr.current
    assert e0.resolve() is e2
    assert e1.resolve() is e2


def test_persist_requires_window_head():
    _, mgr = make_manager()
    e0 = mgr.tag_store()
    mgr.store_drained(e0)
    mgr.close_current()
    e1 = mgr.tag_store()
    mgr.store_drained(e1)
    mgr.close_current()
    with pytest.raises(RuntimeError):
        mgr.mark_persisted(e1)  # e0 must persist first


def test_persist_pops_window_and_fires_waiters():
    _, mgr = make_manager()
    fired = []
    e0 = mgr.tag_store()
    mgr.store_drained(e0)
    mgr.close_current()
    e0.on_persist(lambda: fired.append("p"))
    mgr.mark_persisted(e0)
    assert fired == ["p"]
    assert e0.persisted
    assert mgr.window == []
    with pytest.raises(RuntimeError):
        mgr.mark_persisted(e0)


def test_persist_rejects_epoch_with_work_left():
    _, mgr = make_manager()
    e0 = mgr.tag_store()
    mgr.store_drained(e0)
    mgr.close_current()
    e0.lines.add(0x40)
    with pytest.raises(RuntimeError):
        mgr.mark_persisted(e0)


def test_persist_clears_idt_edges_and_notifies_dependents():
    engine_a, mgr_a = make_manager()
    mgr_b = EpochManager(1, engine_a, StatDomain("core1"), 8)
    source = mgr_a.tag_store()
    mgr_a.store_drained(source)
    mgr_a.close_current()
    dependent = mgr_b.tag_store()
    source.idt_dependents.add(dependent)
    dependent.idt_sources.add(source)
    checked = []
    mgr_b.persist_check = checked.append
    mgr_a.mark_persisted(source)
    assert dependent.idt_sources == set()
    assert checked == [dependent]


def test_deps_persisted_gates_on_sources():
    engine, mgr_a = make_manager()
    mgr_b = EpochManager(1, engine, StatDomain("core1"), 8)
    e = mgr_a.tag_store()
    mgr_a.store_drained(e)
    mgr_a.close_current()
    src = mgr_b.tag_store()
    e.idt_sources.add(src)
    assert not mgr_a.deps_persisted(e)
    e.idt_sources.clear()
    assert mgr_a.deps_persisted(e)


def test_completion_hook_fires():
    _, mgr = make_manager()
    seen = []
    mgr.completion_hook = seen.append
    e = mgr.tag_store()
    mgr.store_drained(e)
    mgr.close_current()
    assert seen == [e]


def test_audit_passes_on_sane_state():
    _, mgr = make_manager()
    e = mgr.tag_store()
    mgr.store_drained(e)
    mgr.close_current()
    mgr.tag_store()
    mgr.audit()
