"""Tests for the synthetic application workload generators."""

import pytest

from repro.workloads.apps import APP_PROFILES, AppProfile, app_programs
from repro.workloads.apps.generator import _SHARED_BASE
from repro.workloads.base import OpKind

PAPER_APPS = {
    "canneal", "dedup", "freqmine",          # PARSEC
    "barnes", "cholesky", "radix",           # SPLASH-2
    "intruder", "ssca2", "vacation",         # STAMP
}


def test_all_paper_benchmarks_present():
    assert set(APP_PROFILES) == PAPER_APPS


def test_suites_assigned():
    assert APP_PROFILES["canneal"].suite == "parsec"
    assert APP_PROFILES["radix"].suite == "splash2"
    assert APP_PROFILES["vacation"].suite == "stamp"


def test_ssca2_is_the_write_intensive_fine_grained_outlier():
    ssca2 = APP_PROFILES["ssca2"]
    others = [p for name, p in APP_PROFILES.items() if name != "ssca2"]
    assert all(ssca2.shared_fraction >= p.shared_fraction for p in others)
    assert ssca2.store_fraction >= max(
        p.store_fraction for p in others if p.name != "radix"
    )


def test_unknown_app_rejected():
    with pytest.raises(KeyError):
        app_programs("blackscholes", 2, 100)


def test_profile_validation():
    with pytest.raises(ValueError):
        AppProfile("x", "s", store_fraction=1.5, working_set_lines=10,
                   hot_lines=5, hot_bias=0.5, shared_fraction=0.1,
                   shared_lines=10, shared_write_fraction=0.1,
                   compute_per_op=1)
    with pytest.raises(ValueError):
        AppProfile("x", "s", store_fraction=0.5, working_set_lines=10,
                   hot_lines=50, hot_bias=0.5, shared_fraction=0.1,
                   shared_lines=10, shared_write_fraction=0.1,
                   compute_per_op=1)


def test_programs_one_per_thread_deterministic():
    a = [list(p) for p in app_programs("canneal", 2, 200, seed=4)]
    b = [list(p) for p in app_programs("canneal", 2, 200, seed=4)]
    for pa, pb in zip(a, b):
        assert [(o.kind, o.addr) for o in pa] == [(o.kind, o.addr) for o in pb]


def test_memory_op_count():
    ops = list(app_programs("radix", 1, 500, seed=1)[0])
    mem = [o for o in ops if o.kind in (OpKind.LOAD, OpKind.STORE)]
    assert len(mem) == 500


def test_store_fraction_approximately_respected():
    profile = APP_PROFILES["radix"]
    ops = [o for o in app_programs("radix", 1, 4000, seed=2)[0]
           if o.kind in (OpKind.LOAD, OpKind.STORE)]
    stores = sum(1 for o in ops if o.kind is OpKind.STORE)
    observed = stores / len(ops)
    # Shared traffic shifts the mix slightly; allow a generous band.
    assert abs(observed - profile.store_fraction) < 0.08


def test_threads_share_only_the_shared_pool():
    progs = app_programs("ssca2", 2, 1500, seed=3)
    streams = [
        {o.addr & ~63 for o in p if o.kind in (OpKind.LOAD, OpKind.STORE)}
        for p in progs
    ]
    overlap = streams[0] & streams[1]
    assert overlap, "fine-grained sharing expected for ssca2"
    assert all(addr >= _SHARED_BASE for addr in overlap)
    assert all(addr < 0x4000_0000 for addr in overlap)


def test_hot_lines_receive_most_private_stores():
    profile = APP_PROFILES["freqmine"]
    ops = [o for o in app_programs("freqmine", 1, 6000, seed=5)[0]
           if o.kind is OpKind.STORE and o.addr >= 0x4000_0000]
    hot_limit = 0x4000_0000 + profile.hot_lines * 64
    hot = sum(1 for o in ops if o.addr < hot_limit)
    assert hot / len(ops) > profile.hot_bias - 0.1


def test_no_barriers_in_bsp_streams():
    """The paper runs these benchmarks unmodified; barriers come from
    hardware, never the trace."""
    for name in PAPER_APPS:
        ops = list(app_programs(name, 1, 300, seed=1)[0])
        assert all(o.kind is not OpKind.BARRIER for o in ops), name


# ----------------------------------------------------------------------
# The serving workload (the zipfian key-value front-end)
# ----------------------------------------------------------------------
def _serving(**kwargs):
    from repro.workloads.apps import ServingWorkload
    return ServingWorkload(thread_id=0, seed=11, **kwargs)


def test_serving_zipf_draws_stay_in_the_keyspace():
    bench = _serving(num_keys=64)
    slots = [bench._draw_key() for _ in range(5000)]
    assert all(0 <= s < 64 for s in slots)
    assert len(set(slots)) > 1


def test_serving_zipf_is_head_heavy():
    # Rank 1 alone should beat the combined tail half of the keyspace
    # at s ~ 0.99 -- the hot/cold split the workload exists to create.
    bench = _serving(num_keys=256)
    counts = {}
    for _ in range(20000):
        slot = bench._draw_key()
        counts[slot] = counts.get(slot, 0) + 1
    hottest = max(counts.values())
    tail = sorted(counts.values())[: len(counts) // 2]
    assert hottest > sum(tail)


def test_serving_burst_gaps_are_emitted_between_bursts():
    bench = _serving(num_keys=32, burst_length=4, burst_gap_cycles=777)
    ops = list(bench.ops(12))
    gaps = [o for o in ops if o.kind is OpKind.COMPUTE and o.cycles == 777]
    # 12 transactions in bursts of 4: gaps before bursts 2 and 3 only
    # (no gap before the first burst).
    assert len(gaps) == 2


def test_serving_put_and_get_shapes():
    from repro.workloads.micro.common import ENTRY_SIZE

    lines = ENTRY_SIZE // 64
    put = _serving(num_keys=8, put_fraction=1.0, burst_length=0)
    ops = list(put.transaction())
    stores = [o for o in ops if o.kind is OpKind.STORE]
    assert len(stores) == lines + 1            # entry body + index slot
    assert stores[-1].size == 8                # the publish store
    assert ops[-1].kind is OpKind.BARRIER      # persist-then-publish
    get = _serving(num_keys=8, put_fraction=0.0, burst_length=0)
    ops = list(get.transaction())
    loads = [o for o in ops if o.kind is OpKind.LOAD]
    assert len(loads) == lines + 1             # index slot + entry body
    assert all(o.kind is OpKind.LOAD for o in ops)


def test_serving_registered_with_the_micro_factory():
    from repro.workloads.micro import make_benchmark

    bench = make_benchmark("serving", thread_id=1, seed=2)
    assert bench.name == "serving"
    assert bench.thread_id == 1
