"""Tests for the MSI directory."""

from repro.mem.coherence import Directory


def test_unknown_line_has_no_owner():
    directory = Directory()
    assert directory.owner_of(0x1000) is None
    assert directory.peek(0x1000) is None


def test_set_owner_makes_exclusive():
    directory = Directory()
    directory.add_sharer(0x1000, 1)
    directory.add_sharer(0x1000, 2)
    directory.set_owner(0x1000, 3)
    entry = directory.peek(0x1000)
    assert entry.owner == 3
    assert entry.sharers == {3}


def test_read_downgrades_owner_to_sharer():
    directory = Directory()
    directory.set_owner(0x1000, 1)
    directory.add_sharer(0x1000, 2)
    entry = directory.peek(0x1000)
    assert entry.owner is None
    assert entry.sharers == {1, 2}


def test_clear_owner_keeps_copy_as_sharer():
    directory = Directory()
    directory.set_owner(0x1000, 1)
    directory.clear_owner(0x1000)
    entry = directory.peek(0x1000)
    assert entry.owner is None
    assert 1 in entry.sharers


def test_drop_core_removes_all_record():
    directory = Directory()
    directory.set_owner(0x1000, 1)
    directory.drop_core(0x1000, 1)
    assert directory.peek(0x1000) is None  # empty entries are reclaimed


def test_drop_core_leaves_other_sharers():
    directory = Directory()
    directory.add_sharer(0x1000, 1)
    directory.add_sharer(0x1000, 2)
    directory.drop_core(0x1000, 1)
    entry = directory.peek(0x1000)
    assert entry.sharers == {2}


def test_drop_line_forgets_everything():
    directory = Directory()
    directory.set_owner(0x1000, 1)
    directory.add_sharer(0x1000, 2)
    directory.drop_line(0x1000)
    assert directory.peek(0x1000) is None


def test_lines_tracked_independently():
    directory = Directory()
    directory.set_owner(0x1000, 1)
    directory.set_owner(0x2000, 2)
    assert directory.owner_of(0x1000) == 1
    assert directory.owner_of(0x2000) == 2
