"""Tests pinning down *when* stores are tagged with epochs.

Condit et al.'s design (which the paper builds on) tags a store with
the epoch ID current when the store completes at the L1.  Persist
barriers therefore travel through the write buffer as markers, and an
epoch can only close once every one of its stores has reached the L1 --
the property that makes closed epochs immediately flushable and the
split-based deadlock-avoidance argument sound (see
repro/cpu/processor.py).
"""

from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.base import Program


def machine(**overrides):
    defaults = dict(
        barrier_design=BarrierDesign.LB,
        persistency=PersistencyModel.BEP,
    )
    defaults.update(overrides)
    return Multicore(MachineConfig.tiny(**defaults), keep_epoch_log=True)


def epoch_store_counts(m):
    counts = {}
    for mgr in m.managers:
        for epoch in mgr.retired + mgr.window:
            if epoch.num_stores:
                counts[(epoch.core_id, epoch.seq)] = epoch.num_stores
    return counts


def test_stores_land_in_their_program_order_epochs():
    m = machine()
    p = Program()
    for i in range(3):
        p.store(0x1000 + i * 64, 8)
    p.barrier()
    for i in range(2):
        p.store(0x5000 + i * 64, 8)
    p.barrier()
    m.run([p])
    counts = epoch_store_counts(m)
    assert counts == {(0, 0): 3, (0, 1): 2}


def test_rapid_barriers_respected_despite_buffered_stores():
    """Barriers issued while earlier stores are still draining must not
    leak stores across epochs."""
    m = machine(nvram_read_latency=1)  # keep it quick
    p = Program()
    for i in range(12):
        p.store(0x1000 + i * 64, 8)
        p.barrier()
    m.run([p])
    counts = epoch_store_counts(m)
    assert len(counts) == 12
    assert all(v == 1 for v in counts.values())


def test_epoch_completes_only_after_last_store_drains():
    m = machine()
    seen = []
    mgr = m.managers[0]
    original_hook = mgr.completion_hook

    def hook(epoch):
        # At completion, no store of this epoch may still be pending.
        assert epoch.pending_stores == 0
        seen.append(epoch.seq)
        original_hook(epoch)

    mgr.completion_hook = hook
    p = Program()
    for i in range(16):
        p.store(0x1000 + (i % 4) * 64, 8)
    p.barrier()
    p.store(0x5000, 8)
    p.barrier()
    m.run([p])
    assert seen == [0, 1]


def test_bsp_hardware_epoch_sizes_counted_at_drain():
    m = Multicore(
        MachineConfig.tiny(
            barrier_design=BarrierDesign.LB_PP,
            persistency=PersistencyModel.BSP, bsp_epoch_stores=10,
        ),
        keep_epoch_log=True,
    )
    p = Program()
    for i in range(35):
        p.store(0x1000 + (i % 16) * 64, 8)
    m.run([p])
    counts = epoch_store_counts(m)
    sizes = [counts[k] for k in sorted(counts)]
    # 35 stores at 10 per epoch: 10, 10, 10, 5.
    assert sizes == [10, 10, 10, 5]


def test_loads_do_not_affect_epoch_membership():
    m = machine()
    p = Program()
    p.store(0x1000, 8)
    for i in range(8):
        p.load(0x2000 + i * 64)
    p.store(0x1040, 8)
    p.barrier()
    m.run([p])
    counts = epoch_store_counts(m)
    assert counts == {(0, 0): 2}
