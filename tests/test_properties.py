"""Property-based tests over the whole machine.

Random multi-threaded programs, random barrier designs, random crash
points: the machine must terminate, keep its internal invariants
(:meth:`Multicore.audit`), and leave NVRAM consistent with epoch
happens-before order at every crash point.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import SetAssociativeCache
from repro.recovery import check_epoch_order
from repro.recovery.crash import CrashOutcome, snapshot_epochs
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.sim.engine import Engine
from repro.sim.stats import StatDomain
from repro.system import Multicore
from repro.workloads.base import Program

DESIGNS = list(BarrierDesign)


def random_programs(rng, num_threads, ops_per_thread, shared_lines=6,
                    private_lines=24, barrier_prob=0.12,
                    strand_prob=0.0, num_strands=3):
    """Programs mixing private and shared traffic with random barriers
    (and, optionally, random strand switches)."""
    shared = [0x8000 + i * 64 for i in range(shared_lines)]
    programs = []
    for tid in range(num_threads):
        private = [0x100000 * (tid + 1) + i * 64 for i in range(private_lines)]
        p = Program()
        for _ in range(ops_per_thread):
            if strand_prob and rng.random() < strand_prob:
                p.strand(rng.randrange(num_strands))
            pool = shared if rng.random() < 0.3 else private
            addr = rng.choice(pool)
            roll = rng.random()
            if roll < 0.5:
                p.store(addr, 8, value=(tid, rng.randrange(1000)))
            elif roll < 0.85:
                p.load(addr)
            else:
                p.compute(rng.randrange(60))
            if rng.random() < barrier_prob:
                p.barrier()
        p.barrier()
        programs.append(p)
    return programs


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    design_index=st.integers(0, len(DESIGNS) - 1),
)
def test_random_bep_runs_terminate_and_audit(seed, design_index):
    rng = random.Random(seed)
    config = MachineConfig.tiny(
        barrier_design=DESIGNS[design_index],
        persistency=PersistencyModel.BEP,
    )
    m = Multicore(config)
    result = m.run(random_programs(rng, 2, 60))
    assert result.finished
    assert result.cycles_durable is not None
    m.audit()
    # After a full drain every closed epoch has persisted.
    for mgr in m.managers:
        for epoch in mgr.window:
            assert epoch.ongoing and epoch.num_stores == 0


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    design_index=st.integers(0, len(DESIGNS) - 1),
    crash_cycle=st.integers(100, 40_000),
)
def test_random_crashes_leave_consistent_nvram(seed, design_index,
                                               crash_cycle):
    rng = random.Random(seed)
    config = MachineConfig.tiny(
        barrier_design=DESIGNS[design_index],
        persistency=PersistencyModel.BEP,
    )
    m = Multicore(config, track_values=True, track_persist_order=True,
                  keep_epoch_log=True)
    m.run(random_programs(rng, 2, 60), max_cycles=crash_cycle, drain=False)
    outcome = CrashOutcome(m.engine.now, m.image, snapshot_epochs(m))
    check_epoch_order(outcome)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    design_index=st.integers(0, len(DESIGNS) - 1),
    crash_cycle=st.integers(100, 40_000),
)
def test_random_stranded_crashes_leave_consistent_nvram(
        seed, design_index, crash_cycle):
    """Random multi-strand programs: the strand-aware happens-before
    order must hold at every crash point, under every design."""
    rng = random.Random(seed)
    config = MachineConfig.tiny(
        barrier_design=DESIGNS[design_index],
        persistency=PersistencyModel.BEP,
    )
    m = Multicore(config, track_values=True, track_persist_order=True,
                  keep_epoch_log=True)
    programs = random_programs(rng, 2, 60, strand_prob=0.15)
    m.run(programs, max_cycles=crash_cycle, drain=False)
    outcome = CrashOutcome(m.engine.now, m.image, snapshot_epochs(m))
    check_epoch_order(outcome)
    m.audit()


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    epoch_stores=st.sampled_from([20, 60, 200]),
)
def test_random_bsp_runs_keep_epoch_order(seed, epoch_stores):
    rng = random.Random(seed)
    config = MachineConfig.tiny(
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BSP,
        bsp_epoch_stores=epoch_stores,
    )
    m = Multicore(config, track_values=True, track_persist_order=True,
                  keep_epoch_log=True)
    result = m.run(random_programs(rng, 2, 80, barrier_prob=0.0))
    assert result.finished
    m.audit()
    outcome = CrashOutcome(m.engine.now, m.image, snapshot_epochs(m))
    check_epoch_order(outcome)


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 63), st.booleans()),  # (line index, touch?)
    min_size=1, max_size=200,
))
def test_cache_lru_matches_reference_model(trace):
    """The set-associative array behaves like a reference LRU dict."""
    cache = SetAssociativeCache("ref", 4, 4, 64, StatDomain("c"))
    reference = {s: [] for s in range(4)}  # set -> lines, LRU first
    for index, touch in trace:
        line = index * 64
        set_index = index % 4
        entry = cache.lookup(line)
        if entry is not None and touch:
            cache.touch(entry)
            reference[set_index].remove(line)
            reference[set_index].append(line)
        elif entry is None:
            victim = cache.victim_for(line)
            if victim is not None:
                cache.remove(victim.line)
                reference[set_index].remove(victim.line)
            cache.insert(line)
            reference[set_index].append(line)
    for set_index, lines in reference.items():
        for line in lines:
            assert cache.lookup(line) is not None
    assert len(cache) == sum(len(v) for v in reference.values())


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_determinism_same_seed_same_result(seed):
    """Two identical machines running identical programs agree cycle for
    cycle -- the property the whole benchmark harness rests on."""
    def one_run():
        rng = random.Random(seed)
        config = MachineConfig.tiny(
            barrier_design=BarrierDesign.LB_PP,
            persistency=PersistencyModel.BEP,
        )
        m = Multicore(config)
        result = m.run(random_programs(rng, 2, 50))
        return (result.cycles_visible, result.cycles_durable,
                result.nvram_writes, result.intra_conflicts,
                result.inter_conflicts)

    assert one_run() == one_run()
