"""Tests for strand persistency (Pelley et al.'s third model).

The paper evaluates strict and epoch persistency; strand persistency is
the natural extension: a thread may divide its persists into *strands*
that carry no mutual ordering, so independent work (separate queues,
separate log partitions) persists concurrently instead of serializing
behind one per-thread epoch order.
"""

import pytest

from repro.recovery import check_epoch_order, run_with_crash
from repro.recovery.crash import CrashOutcome, snapshot_epochs
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.base import Program, strand


def machine(design=BarrierDesign.LB, track=False, **overrides):
    defaults = dict(
        barrier_design=design, persistency=PersistencyModel.BEP,
    )
    defaults.update(overrides)
    return Multicore(MachineConfig.tiny(**defaults), track_values=track,
                     track_persist_order=track, keep_epoch_log=track)


def test_strand_op_validation():
    with pytest.raises(ValueError):
        strand(-1)


def test_epochs_carry_their_strand():
    m = machine(track=True)
    p = Program()
    p.store(0x1000, 8).barrier()               # strand 0, epoch 0
    p.strand(1)
    p.store(0x2000, 8).barrier()               # strand 1, epoch 1
    p.strand(0)
    p.store(0x3000, 8).barrier()               # strand 0, epoch 2
    m.run([p])
    epochs = sorted(
        (e.seq, e.strand)
        for e in m.managers[0].retired if e.num_stores
    )
    assert epochs == [(0, 0), (1, 1), (2, 0)]


def test_cross_strand_epochs_persist_independently():
    """A conflict on strand 1 must not force strand 0's backlog out."""
    m = machine(track=True)
    p = Program()
    p.store(0x1000, 8).barrier()     # strand 0: stays lazily buffered
    p.strand(1)
    p.store(0x2000, 8).barrier()     # strand 1 epoch
    p.store(0x2000, 8).barrier()     # intra conflict *within strand 1*
    result = m.run([p], drain=False)
    assert result.finished
    assert result.intra_conflicts == 1
    # Strand 1's first epoch was flushed by the conflict; strand 0's
    # epoch is still buffered (lazily), persisting nothing.
    persisted = [(r.core_id, r.epoch_seq) for r in m.image.history
                 if r.kind == "data"]
    assert (0, 1) in persisted
    assert all(seq != 0 for _core, seq in persisted)


def test_same_strand_order_still_enforced():
    m = machine(track=True)
    p = Program()
    for i in range(4):
        p.store(0x1000 + i * 64, 8).barrier()
    # Conflict with the newest epoch: all four (same strand) must flush.
    p.store(0x1000 + 3 * 64, 8).barrier()
    m.run([p])
    seqs = [r.epoch_seq for r in m.image.history if r.kind == "data"]
    assert seqs == sorted(seqs)


def test_strand_switch_is_ordered_through_write_buffer():
    """Stores issued before a strand switch belong to the old strand
    even if they are still in the write buffer at switch time."""
    m = machine(track=True)
    p = Program()
    for i in range(6):
        p.store(0x1000 + i * 64, 8)
    p.strand(1)
    for i in range(3):
        p.store(0x5000 + i * 64, 8)
    p.barrier()
    p.strand(0)
    p.barrier()
    m.run([p])
    by_strand = {}
    for e in m.managers[0].retired:
        by_strand.setdefault(e.strand, 0)
        by_strand[e.strand] += e.num_stores
    assert by_strand == {0: 6, 1: 3}


def test_strands_unordered_in_persist_history():
    """With lazy LB and a conflict only on the *second* strand, strand
    1's epoch may persist before strand 0's earlier epoch -- legal under
    strand persistency, and the checker must accept it."""
    m = machine(track=True)
    p = Program()
    p.store(0x1000, 8).barrier()               # strand 0, seq 0
    p.strand(1)
    p.store(0x2000, 8).barrier()               # strand 1, seq 1
    p.store(0x2000, 8).barrier()               # force strand 1 flush
    m.run([p])                                  # drain flushes the rest
    history = [(r.epoch_seq, r.line) for r in m.image.history
               if r.kind == "data"]
    # Strand 1's epoch (seq 1) persisted before strand 0's (seq 0).
    seqs = [seq for seq, _line in history]
    assert seqs.index(1) < seqs.index(0)
    outcome = CrashOutcome(m.engine.now, m.image, snapshot_epochs(m))
    check_epoch_order(outcome)  # must not raise


def test_single_strand_behaviour_is_unchanged():
    """A program that never issues STRAND ops behaves exactly as before
    the strands feature existed (same cycles, same persists)."""
    def run(with_noop_strand_ops):
        m = machine(design=BarrierDesign.LB_PP)
        p = Program()
        for i in range(20):
            if with_noop_strand_ops:
                p.strand(0)                     # switching to self: no-op
            p.store(0x1000 + (i % 4) * 64, 8).barrier()
        result = m.run([p])
        return result.cycles_durable, result.nvram_writes

    assert run(False)[1] == run(True)[1]


def test_strand_crash_consistency_property():
    """Random-ish two-strand workload crashes at several points; the
    strand-aware checker accepts every durable state."""
    for crash in (800, 4000, 20000, 60000):
        m = machine(design=BarrierDesign.LB_IDT, track=True)
        p0 = Program()
        for i in range(30):
            p0.strand(i % 2)
            p0.store(0x1000 + (i % 8) * 64, 8).barrier()
        p1 = Program()
        for i in range(30):
            p1.compute(50)
            p1.load(0x1000 + (i % 8) * 64)
            p1.store(0x9000 + (i % 4) * 64, 8).barrier()
        outcome = run_with_crash(m, [p0, p1], crash)
        check_epoch_order(outcome)


def test_strands_reduce_conflict_coupling():
    """Two independent hot structures: in one strand, a conflict on
    either flushes both; in two strands, each flushes alone.  The
    two-strand run must persist no more (and usually fewer) epochs per
    conflict."""
    def run(use_strands):
        m = machine(design=BarrierDesign.LB)
        p = Program()
        for i in range(40):
            if use_strands:
                p.strand(i % 2)
            hot = 0x1000 if i % 2 == 0 else 0x8000
            p.store(hot, 8)
            p.store(0x20000 + i * 64, 8)
            p.barrier()
        result = m.run([p], drain=False)
        return result.stats.total("epochs_persisted")

    # Without strands the alternating hot-line conflicts drag the whole
    # window along; with strands each chain is half as deep.
    assert run(True) <= run(False)


def test_arbiter_flushes_eligible_strand_past_ongoing_one():
    """With strand 0's epoch still ongoing (no barrier yet), proactive
    flushing must not be blocked from persisting strand 1's completed
    epoch behind it in the window."""
    m = machine(design=BarrierDesign.LB_PF, track=True)
    p = Program()
    p.store(0x1000, 8)                 # strand 0: never closed mid-run
    p.strand(1)
    p.store(0x2000, 8).barrier()       # strand 1: completes -> PF flush
    p.strand(0)
    p.compute(20_000)                  # give PF time while s0 is ongoing
    p.store(0x1040, 8).barrier()
    result = m.run([p], drain=False)
    assert result.finished
    persisted_lines = {r.line for r in m.image.history if r.kind == "data"}
    assert 0x2000 in persisted_lines   # strand 1 persisted mid-run
