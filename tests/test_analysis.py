"""Tests for the overhead-analysis helpers."""

from repro.harness.analysis import compare_designs, overhead_breakdown
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.base import Program
from repro.workloads.micro import make_benchmark


def run_pair():
    def run(model, design=BarrierDesign.LB):
        config = MachineConfig.tiny(
            barrier_design=design, persistency=model,
        )
        m = Multicore(config)
        programs = [
            make_benchmark("queue", thread_id=t, seed=4).ops(25)
            for t in range(2)
        ]
        return m.run(programs)

    return run(PersistencyModel.BEP), run(PersistencyModel.NP)


def test_breakdown_reports_positive_slowdown():
    bep, np_ = run_pair()
    breakdown = overhead_breakdown(bep, np_)
    assert breakdown.slowdown > 1.0
    assert breakdown.writes_data > 0
    assert breakdown.writes_log == 0          # BEP never logs
    assert breakdown.conflicts_intra > 0
    assert 0.0 <= breakdown.stall_share_of_overhead <= 1.0
    text = breakdown.describe()
    assert "slowdown over NP" in text and "NVRAM writes" in text


def test_breakdown_without_baseline_is_neutral():
    bep, _ = run_pair()
    breakdown = overhead_breakdown(bep)
    assert breakdown.slowdown == 1.0


def test_breakdown_totals():
    bep, np_ = run_pair()
    breakdown = overhead_breakdown(bep, np_)
    assert breakdown.writes_total == (
        breakdown.writes_data + breakdown.writes_log
        + breakdown.writes_checkpoint + breakdown.writes_eviction
    )


def test_compare_designs_table():
    def run(design):
        config = MachineConfig.tiny(
            barrier_design=design, persistency=PersistencyModel.BEP,
        )
        m = Multicore(config)
        p = Program()
        for i in range(30):
            p.store(0x1000 + (i % 8) * 64, 8).barrier()
        p.txn_mark()
        return m.run([p])

    results = {
        "LB": run(BarrierDesign.LB),
        "LB++": run(BarrierDesign.LB_PP),
    }
    table = compare_designs(results, baseline=results["LB"])
    row = table.as_dict()["durable"]
    assert row["LB"] == 1.0
    assert row["LB++"] <= row["LB"] + 0.01

    thpt = compare_designs(results, metric="throughput")
    assert set(thpt.as_dict()["throughput"]) == {"LB", "LB++"}
