"""Tests for the tracer and the figure-export helpers."""

import pytest

from repro.harness.export import render_bars, write_csv
from repro.harness.report import FigureTable
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.sim.trace import TraceRecord, Tracer
from repro.system import Multicore
from repro.workloads.base import Program


def traced_run(design=BarrierDesign.LB_IDT, tracer=None):
    config = MachineConfig.tiny(
        barrier_design=design, persistency=PersistencyModel.BEP,
    )
    machine = Multicore(config, tracer=tracer)
    p0 = Program().store(0x1000, 8).barrier().store(0x3000, 8).barrier()
    p0.store(0x1000, 8).barrier()
    p1 = Program().compute(2000).load(0x1000).store(0x5000, 8).barrier()
    machine.run([p0, p1])
    return machine


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_tracer_records_conflicts_and_persists():
    tracer = Tracer()
    traced_run(tracer=tracer)
    assert tracer.count("conflict") >= 2      # intra + inter
    assert tracer.count("epoch_persist") >= 3
    assert tracer.count("flush_start") >= 1
    kinds = {r.kind for r in tracer.records}
    assert "stall" in kinds


def test_tracer_kind_filter():
    tracer = Tracer(kinds={"epoch_persist"})
    traced_run(tracer=tracer)
    assert len(tracer) > 0
    assert all(r.kind == "epoch_persist" for r in tracer.records)


def test_tracer_rejects_unknown_kind():
    with pytest.raises(ValueError):
        Tracer(kinds={"nonsense"})


def test_tracer_limit_drops_excess():
    tracer = Tracer(limit=3)
    traced_run(tracer=tracer)
    assert len(tracer) == 3
    assert tracer.dropped > 0


def test_tracer_idt_edges_visible():
    tracer = Tracer(kinds={"idt_edge"})
    traced_run(design=BarrierDesign.LB_IDT, tracer=tracer)
    assert tracer.count("idt_edge") >= 1


def test_trace_record_str_and_dump():
    record = TraceRecord(42, "conflict", 1, {"line": "0x1000"})
    text = str(record)
    assert "42" in text and "conflict" in text and "0x1000" in text
    tracer = Tracer()
    tracer.record(1, "stall", 0, target="E0.0")
    assert "stall" in tracer.dump()


def test_untraced_machine_runs_clean():
    machine = traced_run(tracer=None)
    assert machine.tracer is None


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def sample_table():
    table = FigureTable("Sample", ["LB", "LB++"], summary="gmean")
    table.add_row("hash", [1.0, 1.2])
    table.add_row("queue", [1.0, 1.3])
    return table


def test_write_csv_roundtrip(tmp_path):
    path = write_csv(sample_table(), tmp_path / "out" / "fig.csv")
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "benchmark,LB,LB++"
    assert lines[1].startswith("hash,1,")
    assert lines[-1].startswith("gmean,")


def test_render_bars_contains_all_rows():
    text = render_bars(sample_table(), width=20)
    for token in ("hash", "queue", "gmean", "LB++", "1.300"):
        assert token in text


def test_render_bars_scales_to_peak():
    table = FigureTable("T", ["A"], summary="none")
    table.add_row("big", [10.0])
    table.add_row("small", [5.0])
    text = render_bars(table, width=10)
    big_line = next(l for l in text.splitlines() if "10.000" in l)
    small_line = next(l for l in text.splitlines() if "5.000" in l)
    assert big_line.count("█") == 2 * small_line.count("█")


def test_render_bars_baseline_marker():
    text = render_bars(sample_table(), width=20, baseline=1.0)
    assert "baseline 1" in text
