"""Per-leg fault-injection tests: every injectable protocol leg fires
where targeted, bumps its counter, stays bounded at the retry maximum,
and trips the simulated-time watchdog into a typed ProtocolError when a
retry chain exceeds its bound."""

import pytest

from repro.recovery.campaign import (
    CampaignSpec,
    enumerate_points,
    run_baseline,
    _run_probe,
)
from repro.sim.faults import (
    FAULT_LEGS,
    FaultConfig,
    FaultInjector,
    ProtocolError,
    backoff_cycles,
)


SPEC = CampaignSpec(workload="pingpong", num_cores=2, transactions=3,
                    mc_stride=2)

# Which stat counter each leg bumps when its fault fires.
LEG_COUNTERS = {
    "bank_ack_drop": "flush_ack_drops",
    "bank_ack_detour": "flush_ack_delays",
    "flush_epoch_drop": "flush_epoch_drops",
    "flush_epoch_dup": "flush_epoch_dups",
    "link_delay": "flush_link_delays",
    "persist_cmp_drop": "flush_cmp_drops",
    "persist_ack_drop": "fault_persist_ack_drops",
    "mc_stall": "fault_stalls",
    "torn_write": "fault_torn_writes",
    "write_retry": "fault_write_retries",
}


@pytest.fixture(scope="module")
def baseline():
    return run_baseline(SPEC)


@pytest.fixture(scope="module")
def points(baseline):
    return enumerate_points(SPEC, baseline)


def first_point(points, leg):
    for point in points:
        if point.leg == leg:
            return point
    raise AssertionError(f"no enumerated point for leg {leg}")


# ----------------------------------------------------------------------
# Injector unit behaviour
# ----------------------------------------------------------------------
def test_leg_counter_table_covers_registry():
    assert set(LEG_COUNTERS) == set(FAULT_LEGS)


def test_backoff_is_exponential_sum():
    assert backoff_cycles(200, 0) == 0
    assert backoff_cycles(200, 1) == 200
    assert backoff_cycles(200, 2) == 600
    assert backoff_cycles(300, 3) == 300 * 7


def test_unknown_inject_leg_rejected():
    with pytest.raises(ValueError, match="unknown fault leg"):
        FaultInjector(FaultConfig(inject=(("bogus_leg", (0, 0)),)))


def test_targeted_injection_fires_only_at_its_coordinates():
    inject = (("flush_epoch_drop", (0, 1, 2)),)
    faults = FaultInjector(FaultConfig(inject=inject))
    assert faults.flush_epoch_resends(0, 1, 2) == 1
    assert faults.flush_epoch_resends(0, 1, 3) == 0
    assert faults.flush_epoch_resends(1, 1, 2) == 0


def test_targeted_bank_ack_drop_fires_on_first_attempt_only():
    faults = FaultInjector(
        FaultConfig(inject=(("bank_ack_drop", (0, 1, 2)),)))
    assert faults.drop_bank_ack(0, 1, 2, attempt=0)
    assert not faults.drop_bank_ack(0, 1, 2, attempt=1)
    assert not faults.drop_bank_ack(0, 0, 2, attempt=0)


def test_rate_one_chains_stay_bounded():
    cfg = FaultConfig(
        seed=7,
        drop_flush_epoch_rate=1.0,
        drop_persist_ack_rate=1.0,
        drop_persist_cmp_rate=1.0,
        torn_write_rate=1.0,
    )
    faults = FaultInjector(cfg)
    assert faults.flush_epoch_resends(0, 0, 0) == cfg.max_flush_epoch_retries
    assert faults.persist_ack_resends(0, 0, 0x40) == \
        cfg.max_persist_ack_retries
    assert faults.persist_cmp_resends(0, 0, 0) == cfg.max_persist_cmp_retries
    assert faults.torn_write_retries(0, 0) == cfg.max_torn_write_retries


def test_drop_bank_ack_never_drops_final_attempt():
    cfg = FaultConfig(seed=3, drop_ack_rate=1.0)
    faults = FaultInjector(cfg)
    assert faults.drop_bank_ack(0, 0, 0, attempt=0)
    assert not faults.drop_bank_ack(0, 0, 0,
                                    attempt=cfg.max_ack_retries)


# ----------------------------------------------------------------------
# End-to-end wiring: each leg, injected at a real coordinate of the
# captured baseline, fires its counter and the run still completes.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("leg", FAULT_LEGS)
def test_injected_leg_fires_and_run_completes(leg, points):
    # Media legs (torn_write/write_retry) only bite on *write* ordinals,
    # and the campaign deliberately enumerates every MC ordinal; scan a
    # few points until the fault lands on a write.
    candidates = [p for p in points if p.leg == leg][:6]
    assert candidates, f"no enumerated point for leg {leg}"
    fired = 0
    for point in candidates:
        probe = _run_probe(
            SPEC, FaultConfig(seed=SPEC.fault_seed,
                              inject=((point.leg, point.coords),)))
        assert probe.error is None
        assert probe.result is not None and probe.result.finished
        fired = probe.result.stats.total(LEG_COUNTERS[leg])
        if fired:
            break
    assert fired >= 1


def test_tree_edge_flush_epoch_drop_fires():
    spec = CampaignSpec(workload="pingpong", num_cores=4, transactions=3,
                        mc_stride=2, tree=True)
    baseline = run_baseline(spec)
    tree_points = enumerate_points(spec, baseline)
    point = first_point(tree_points, "flush_epoch_drop")
    probe = _run_probe(
        spec, FaultConfig(seed=spec.fault_seed,
                          inject=((point.leg, point.coords),)))
    assert probe.error is None
    assert probe.result is not None and probe.result.finished
    assert probe.result.stats.total("flush_epoch_drops") >= 1


# ----------------------------------------------------------------------
# Watchdogs: a retry chain past its bound aborts with a typed
# ProtocolError instead of hanging the simulation.
# ----------------------------------------------------------------------
WATCHDOGS = [
    ("flush_epoch_resends", dict(drop_flush_epoch_rate=0.5),
     "FlushEpoch retry chain"),
    ("persist_cmp_resends", dict(drop_persist_cmp_rate=0.5),
     "PersistCMP retry chain"),
    ("persist_ack_resends", dict(drop_persist_ack_rate=0.5),
     "PersistAck retry chain"),
    ("torn_write_retries", dict(torn_write_rate=0.5),
     "torn-write rewrite chain"),
]


@pytest.mark.parametrize("method,knobs,message", WATCHDOGS,
                         ids=[w[0] for w in WATCHDOGS])
def test_watchdog_aborts_runaway_retry_chain(monkeypatch, method, knobs,
                                             message):
    monkeypatch.setattr(FaultInjector, method, lambda self, *args: 99)
    probe = _run_probe(SPEC, FaultConfig(seed=SPEC.fault_seed, **knobs))
    assert probe.error is not None
    assert message in str(probe.error)
    # The watchdog aborts the run but still captures a partial image
    # the triage can sweep.
    assert probe.outcome.image is not None


def test_bank_ack_watchdog_rejects_attempts_past_bound():
    probe = run_baseline(
        CampaignSpec(workload="pingpong", num_cores=2, transactions=2,
                     mc_stride=2))
    machine = probe.machine
    faults = FaultInjector(FaultConfig(drop_ack_rate=0.5))
    flush_op = machine.arbiters[0]._flush_op
    flush_op._faults = faults
    with pytest.raises(ProtocolError, match="BankAck retry chain"):
        flush_op._send_bank_ack(
            0, delay=0, attempt=faults.config.max_ack_retries + 1)
