"""Tests for memory controllers and the NVRAM image."""

import pytest

from repro.mem.nvram import MemoryController, NVRAMImage
from repro.sim.config import MachineConfig
from repro.sim.engine import Engine
from repro.sim.stats import StatDomain


def make_mc(track_order=True, **overrides):
    config = MachineConfig.tiny(**overrides)
    engine = Engine()
    image = NVRAMImage(track_order=track_order)
    mc = MemoryController(0, config, engine, image, StatDomain("nvram"))
    return config, engine, image, mc


def test_write_latency_and_commit():
    config, engine, image, mc = make_mc()
    times = []
    mc.write(0x1000, 0, 5, "data", {0: "v"}, callback=times.append)
    engine.run()
    assert times == [config.nvram_write_latency]
    assert image.values[0x1000] == {0: "v"}
    record = image.last_persist[0x1000]
    assert (record.core_id, record.epoch_seq, record.kind) == (0, 5, "data")


def test_read_latency():
    config, engine, image, mc = make_mc()
    times = []
    mc.read(0x1000, times.append)
    engine.run()
    assert times == [config.nvram_read_latency]


def test_writes_queue_behind_occupancy():
    config, engine, image, mc = make_mc()
    times = []
    for i in range(3):
        mc.write(i * 64, 0, 0, "data", callback=times.append)
    engine.run()
    occupancy = config.mc_write_occupancy
    latency = config.nvram_write_latency
    assert times == [latency, occupancy + latency, 2 * occupancy + latency]


def test_reads_queue_behind_writes():
    config, engine, image, mc = make_mc()
    times = []
    mc.write(0, 0, 0, "data")
    mc.read(64, times.append)
    engine.run()
    assert times[0] == config.mc_write_occupancy + config.nvram_read_latency


def test_persist_order_tracked_globally():
    config, engine, image, mc = make_mc()
    mc.write(0, 0, 0, "data")
    mc.write(64, 1, 2, "data")
    engine.run()
    assert [r.index for r in image.history] == [0, 1]
    assert image.history[0].line == 0
    assert image.history[1].core_id == 1
    assert image.persist_count == 2


def test_history_disabled_when_not_tracking():
    config, engine, image, mc = make_mc(track_order=False)
    mc.write(0, 0, 0, "data")
    engine.run()
    assert image.history == []
    assert image.persist_count == 1


def test_log_writes_record_entries():
    config, engine, image, mc = make_mc()
    acked = []
    mc.write_log(0xF0000000, 0x2000, 1, 3, {8: "old"},
                 callback=acked.append)
    engine.run()
    assert acked
    data_line, old = image.log_entries[0xF0000000]
    assert data_line == 0x2000
    assert old == {8: "old"}
    assert image.last_persist[0xF0000000].kind == "log"


def test_plain_write_rejects_log_kind():
    config, engine, image, mc = make_mc()
    mc.write(0xF0000000, 0, 0, "log")
    with pytest.raises(AssertionError):
        engine.run()


def test_later_write_overwrites_values():
    config, engine, image, mc = make_mc()
    mc.write(0, 0, 0, "data", {0: "first"})
    mc.write(0, 0, 1, "data", {0: "second"})
    engine.run()
    assert image.values[0] == {0: "second"}
    assert image.last_persist[0].epoch_seq == 1
