"""Seed-robustness: the paper's qualitative findings must not depend on
one lucky RNG stream."""

import pytest

from repro.harness.runner import Scale, run_bep
from repro.sim.config import BarrierDesign

SEEDS = [1, 7, 23]


@pytest.mark.slow
@pytest.mark.parametrize("bench", ["queue", "rbtree"])
def test_lbpp_beats_lb_across_seeds(bench):
    for seed in SEEDS:
        lb = run_bep(bench, BarrierDesign.LB, scale=Scale.TINY,
                     seed=seed, transactions=40)
        lbpp = run_bep(bench, BarrierDesign.LB_PP, scale=Scale.TINY,
                       seed=seed, transactions=40)
        assert lbpp.throughput > lb.throughput * 0.99, (bench, seed)
        assert lbpp.conflict_epoch_pct < lb.conflict_epoch_pct, (bench, seed)


@pytest.mark.slow
def test_conflict_dominance_is_seed_stable():
    """LB conflict-flushes the vast majority of epochs at every seed
    (the Figure 12 premise)."""
    for seed in SEEDS:
        result = run_bep("hash", BarrierDesign.LB, scale=Scale.TINY,
                         seed=seed, transactions=40)
        assert result.conflict_epoch_pct > 60, seed


@pytest.mark.slow
def test_throughput_variance_is_bounded():
    """Run-to-run spread for a fixed design stays within a band small
    enough for the normalized figures to be meaningful."""
    values = [
        run_bep("queue", BarrierDesign.LB_PP, scale=Scale.TINY,
                seed=seed, transactions=40).throughput
        for seed in SEEDS
    ]
    spread = (max(values) - min(values)) / min(values)
    assert spread < 0.25, values
