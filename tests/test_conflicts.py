"""Integration tests for the paper's conflict semantics (section 3).

These drive small hand-built programs through a 2-core machine and
assert exactly which conflicts arise and how each barrier design
resolves them.
"""

import pytest

from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.base import Program


def machine(design=BarrierDesign.LB, **overrides):
    config = MachineConfig.tiny(
        barrier_design=design, persistency=PersistencyModel.BEP, **overrides
    )
    return Multicore(config)


def test_store_to_own_older_epoch_line_is_intra_conflict():
    m = machine()
    p = Program().store(0x1000, 8).barrier().store(0x2000, 8).barrier()
    p.store(0x1000, 8).barrier()
    result = m.run([p])
    assert result.intra_conflicts == 1
    assert result.inter_conflicts == 0
    m.audit()


def test_store_within_same_epoch_coalesces_without_conflict():
    m = machine()
    p = Program()
    for _ in range(10):
        p.store(0x1000, 8)
    p.barrier()
    result = m.run([p])
    assert result.intra_conflicts == 0
    # Ten coalesced stores persist as one line write.
    assert result.stats.domain("nvram").get("writes_data") == 1


def test_load_of_own_older_epoch_line_is_not_a_conflict():
    m = machine()
    p = Program().store(0x1000, 8).barrier().load(0x1000)
    p.store(0x2000, 8).barrier()
    result = m.run([p])
    assert result.intra_conflicts == 0
    assert result.inter_conflicts == 0


def test_remote_load_of_unpersisted_line_is_inter_conflict():
    m = machine()
    p0 = Program().store(0x1000, 8).barrier().store(0x3000, 8).barrier()
    p1 = Program().compute(2000).load(0x1000)
    result = m.run([p0, p1])
    assert result.inter_conflicts == 1


def test_remote_store_of_unpersisted_line_is_inter_conflict():
    m = machine()
    p0 = Program().store(0x1000, 8).barrier().store(0x3000, 8).barrier()
    p1 = Program().compute(2000).store(0x1000, 8).barrier()
    result = m.run([p0, p1])
    assert result.inter_conflicts == 1


def test_idt_absorbs_inter_conflict_without_stall():
    m = machine(BarrierDesign.LB_IDT)
    p0 = Program().store(0x1000, 8).barrier().store(0x3000, 8).barrier()
    p1 = Program().compute(2000).load(0x1000).store(0x5000, 8).barrier()
    result = m.run([p0, p1])
    conflicts = result.stats.domain("conflicts")
    assert conflicts.get("inter_thread") == 1
    assert conflicts.get("idt_tracked") == 1
    assert result.stats.domain("idt").get("idt_edges") == 1


def test_conflict_with_ongoing_epoch_splits_it():
    m = machine(BarrierDesign.LB_IDT)
    # p0's epoch never closes during p1's read window.
    p0 = Program().store(0x1000, 8).compute(5000).store(0x3000, 8).barrier()
    p1 = Program().compute(2000).load(0x1000).store(0x5000, 8).barrier()
    result = m.run([p0, p1])
    assert result.stats.total("epoch_splits") == 1


def test_circular_sharing_does_not_deadlock():
    """The Figure 5 scenario: mutual reads of each other's ongoing
    epochs must not deadlock under any design."""
    for design in BarrierDesign:
        m = machine(design)
        pa = Program().store(0x1000, 8).compute(1000).load(0x2000)
        pa.store(0x7000, 8).barrier()
        pb = Program().store(0x2000, 8).compute(1000).load(0x1000)
        pb.store(0x8000, 8).barrier()
        result = m.run([pa, pb])
        assert result.finished, design
        assert result.cycles_durable is not None, design
        m.audit()


def test_idt_register_overflow_falls_back_to_online_flush():
    m = machine(BarrierDesign.LB_IDT, idt_registers_per_epoch=1)
    # Two remote cores each publish a line; the reader's single epoch
    # would need two dependence registers.
    cfg = m.config
    assert cfg.idt_registers_per_epoch == 1
    p0 = Program().store(0x1000, 8).barrier().store(0x3000, 8).barrier()
    p1 = Program().compute(3000).load(0x1000).load(0x2000)
    p1.store(0x5000, 8).barrier()
    m2 = Multicore(cfg)
    # Use a 3-core machine for two distinct sources.
    config3 = MachineConfig.tiny(
        num_cores=3, llc_banks=2, mesh_rows=1,
        barrier_design=BarrierDesign.LB_IDT,
        persistency=PersistencyModel.BEP, idt_registers_per_epoch=1,
    )
    m3 = Multicore(config3)
    pa = Program().store(0x1000, 8).barrier().store(0x3000, 8).barrier()
    pb = Program().store(0x2000, 8).barrier().store(0x4000, 8).barrier()
    pc = Program().compute(3000).load(0x1000).load(0x2000)
    pc.store(0x5000, 8).barrier()
    result = m3.run([pa, pb, pc])
    idt = result.stats.domain("idt")
    assert idt.get("idt_register_overflow") >= 1


def test_eviction_of_unpersisted_line_respects_epoch_order():
    """Filling a tiny LLC set with unpersisted dirty lines forces
    eviction conflicts, never an ordering violation."""
    config = MachineConfig.tiny(
        barrier_design=BarrierDesign.LB,
        persistency=PersistencyModel.BEP,
        l1_size=256,          # 1 set x 4 ways per... 256/64/4 = 1 set
        llc_bank_size=2048,   # tiny: 2 sets x 16 ways per bank
    )
    m = Multicore(config, track_persist_order=True, keep_epoch_log=True)
    p = Program()
    for i in range(64):
        p.store(0x10000 + i * 64 * 4, 8)  # all map to few sets
        if i % 4 == 3:
            p.barrier()
    p.barrier()
    result = m.run([p])
    assert result.finished
    # The recovery checker validates the persist order end-to-end.
    from repro.recovery.crash import CrashOutcome, snapshot_epochs
    from repro.recovery.checker import check_epoch_order
    outcome = CrashOutcome(m.engine.now, m.image, snapshot_epochs(m))
    assert check_epoch_order(outcome) > 0


def test_conflict_epoch_percentage_counts_conflict_flushes():
    m = machine()
    p = Program()
    # Rewrite one hot line across epochs: every epoch gets conflict-flushed.
    for i in range(10):
        p.store(0x1000, 8).store(0x2000 + i * 64, 8).barrier()
    result = m.run([p])
    assert result.conflict_epoch_pct > 50


def test_split_prefix_becomes_idt_source_and_state_stays_sane():
    """Section 3.3 end to end: a store into a still-ongoing remote epoch
    splits it, the IDT edge lands on the completed prefix (the conflict
    is absorbed without a stall), and every manager's window invariants
    hold afterwards."""
    m = machine(BarrierDesign.LB_IDT)
    p0 = Program().store(0x1000, 8).compute(5000).store(0x3000, 8).barrier()
    p1 = Program().compute(2000).store(0x1000, 8).store(0x5000, 8).barrier()
    result = m.run([p0, p1])
    assert result.finished
    assert result.stats.total("epoch_splits") == 1
    conflicts = result.stats.domain("conflicts")
    # Every inter-thread conflict is absorbed by IDT: no online stall.
    assert conflicts.get("inter_thread") == 2
    assert conflicts.get("idt_tracked") == 2
    assert conflicts.get("online_flush_stalls") == 0
    # The repeat conflict against the same source dedups to one edge.
    assert result.stats.domain("idt").get("idt_edges") == 1
    m.audit()
