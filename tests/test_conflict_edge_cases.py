"""Edge cases in conflict handling: two-version collisions, eviction
chains, flush/eviction races."""

from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.base import Program


def machine(design=BarrierDesign.LB_IDT, **overrides):
    defaults = dict(
        barrier_design=design, persistency=PersistencyModel.BEP,
    )
    defaults.update(overrides)
    return Multicore(MachineConfig.tiny(**defaults),
                     track_persist_order=True, keep_epoch_log=True)


def test_version_collision_resolved_by_flushing_old_version():
    """IDT leaves T0's old version in the LLC; when T1's L1 later evicts
    its new dirty version onto it, the old version's epoch must flush
    first (the two-version collision)."""
    m = machine(l1_size=256)  # 1-set L1: easy to force evictions
    # T0 dirties the line and keeps its epoch unpersisted (LB+IDT: no PF).
    p0 = Program().store(0x1000, 8).barrier().store(0x2000, 8)
    # T1 takes ownership via IDT (old version retained in LLC), then
    # floods its L1 so the new dirty version is evicted onto the LLC.
    p1 = Program().compute(2000).store(0x1000, 8)
    for i in range(8):
        p1.store(0x10000 + i * 0x100, 8)   # same L1 set as 0x1000
    p1.barrier()
    result = m.run([p0, p1])
    assert result.finished
    m.audit()
    # The persist history must show T0's version before T1's.
    versions = [(r.core_id, r.epoch_seq) for r in m.image.history
                if r.line == 0x1000 and r.kind in ("data", "eviction")]
    assert versions and versions[0][0] == 0


def test_eviction_of_dependent_epoch_waits_for_idt_source():
    """A line of an epoch with an unpersisted IDT source cannot reach
    NVRAM before the source epoch: eviction must force the source chain
    first."""
    m = machine(llc_bank_size=2048, l1_size=256)
    # T0 publishes a line; T1 reads it (IDT edge) then writes a large
    # working set so its dependent epoch's lines face eviction.
    p0 = Program().store(0x1000, 8).barrier().store(0x9000, 8)
    p1 = Program().compute(1500).load(0x1000)
    for i in range(160):
        p1.store(0x20000 + i * 64, 8)
    p1.barrier()
    result = m.run([p0, p1])
    assert result.finished
    # Whatever path persisted them, order must hold: T0's epoch-0 line
    # before any line of T1's dependent epoch.
    from repro.recovery.crash import CrashOutcome, snapshot_epochs
    from repro.recovery.checker import check_epoch_order
    outcome = CrashOutcome(m.engine.now, m.image, snapshot_epochs(m))
    assert check_epoch_order(outcome) > 0


def test_eviction_conflict_counted():
    m = machine(design=BarrierDesign.LB, llc_bank_size=2048, l1_size=256)
    p = Program()
    # Many epochs, working set far beyond the LLC: replacements must hit
    # dirty unpersisted lines whose predecessors haven't persisted.
    for i in range(200):
        p.store(0x20000 + i * 64, 8)
        if i % 16 == 15:
            p.barrier()
    p.barrier()
    result = m.run([p])
    assert result.finished
    assert result.stats.domain("conflicts").get("eviction_conflicts") > 0


def test_flush_skips_lines_already_evicted():
    """A line can leave the caches (natural eviction) between flush
    scheduling and flush issue; the handshake must tolerate it."""
    m = machine(design=BarrierDesign.LB_PP, llc_bank_size=2048,
                l1_size=256)
    p = Program()
    for i in range(120):
        p.store(0x20000 + i * 64, 8)
        if i % 24 == 23:
            p.barrier()
    p.barrier()
    result = m.run([p])
    assert result.finished
    m.audit()
    # Every epoch eventually persisted despite the mixed paths.
    assert result.stats.total("epochs_persisted") == \
        result.stats.total("epochs")


def test_same_line_across_many_epochs_persists_every_version():
    m = machine(design=BarrierDesign.LB)
    p = Program()
    rounds = 6
    for i in range(rounds):
        p.store(0x1000, 8)
        p.store(0x2000 + i * 64, 8)
        p.barrier()
    result = m.run([p])
    assert result.finished
    versions = [r.epoch_seq for r in m.image.history
                if r.line == 0x1000 and r.kind in ("data", "eviction")]
    # Each epoch's version of the hot line reached NVRAM, in order.
    assert versions == sorted(versions)
    assert len(versions) == rounds


def test_write_buffer_forwarding_does_not_skip_conflicts():
    """A forwarded load must not bypass the conflict machinery for the
    *store* that eventually drains."""
    m = machine(design=BarrierDesign.LB)
    p = Program()
    p.store(0x1000, 8).barrier()
    p.store(0x1000, 8)       # intra conflict at drain time
    p.load(0x1000)           # forwarded from WB meanwhile
    p.barrier()
    result = m.run([p])
    assert result.intra_conflicts == 1
    assert result.stats.domain("core0").get("wb_forwards") == 1
