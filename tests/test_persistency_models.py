"""Tests for the persistency models' visibility/durability rules."""

import random

import pytest

from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.base import Program


def random_program(seed, n=300, barrier_every=0.06):
    rng = random.Random(seed)
    p = Program()
    lines = [0x100000 * (seed + 1) + 64 * i for i in range(48)]
    for _ in range(n):
        addr = rng.choice(lines)
        if rng.random() < 0.6:
            p.store(addr, 8)
        else:
            p.load(addr)
        if rng.random() < barrier_every:
            p.barrier()
    p.barrier()
    return p


def run_model(model, design=BarrierDesign.LB_PP, **overrides):
    config = MachineConfig.tiny(
        persistency=model, barrier_design=design, **overrides
    )
    m = Multicore(config)
    result = m.run([random_program(0), random_program(1)])
    assert result.finished
    return result


@pytest.fixture(scope="module")
def model_times():
    return {
        model: run_model(model).cycles_visible
        for model in PersistencyModel
        if model is not PersistencyModel.BSP
    }


def test_np_is_fastest(model_times):
    np_time = model_times[PersistencyModel.NP]
    for model, time in model_times.items():
        if model is not PersistencyModel.NP:
            assert time >= np_time, model


def test_sp_is_slowest(model_times):
    """Strict persistency serializes every store behind NVRAM writes
    (Figure 1a) -- by far the worst model."""
    sp_time = model_times[PersistencyModel.SP]
    for model, time in model_times.items():
        if model is not PersistencyModel.SP:
            assert sp_time > time, model


def test_bep_beats_ep(model_times):
    """Buffering barriers (Figure 1c vs 1b) removes epoch persists from
    the critical path."""
    assert model_times[PersistencyModel.BEP] < model_times[PersistencyModel.EP]


def test_np_ignores_barriers():
    result = run_model(PersistencyModel.NP)
    assert result.stats.total("epochs") == 0
    assert result.nvram_writes == result.stats.domain("nvram").get(
        "writes_eviction"
    )


def test_sp_persists_every_store():
    result = run_model(PersistencyModel.SP)
    stores = result.stats.total("stores")
    assert result.stats.domain("nvram").get("writes_data") == stores


def test_wt_persists_every_store_asynchronously():
    result = run_model(PersistencyModel.BSP_WT)
    stores = result.stats.total("stores")
    assert result.stats.domain("nvram").get("writes_data") == stores
    # WT overlaps writes, so it must beat SP.
    sp = run_model(PersistencyModel.SP)
    assert result.cycles_visible < sp.cycles_visible


def test_bsp_inserts_hardware_epochs():
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BSP,
        barrier_design=BarrierDesign.LB_PP, bsp_epoch_stores=50,
    )
    m = Multicore(config)
    p = Program()
    for i in range(200):
        p.store(0x1000 + (i % 64) * 64, 8)
    result = m.run([p])
    # 200 stores at 50 per epoch: at least 3 hardware barriers (the
    # trailing epoch closes at stream end).
    assert result.stats.total("hw_barriers") >= 3
    # Every hardware epoch checkpoints the register file.
    assert result.stats.domain("nvram").get("writes_checkpoint") > 0


def test_bsp_logging_writes_undo_entries():
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BSP,
        barrier_design=BarrierDesign.LB_PP, bsp_epoch_stores=50,
    )
    m = Multicore(config)
    p = Program()
    for i in range(100):
        p.store(0x1000 + (i % 16) * 64, 8)
    result = m.run([p])
    log_writes = result.stats.domain("nvram").get("writes_log")
    assert log_writes > 0
    # At most one log entry per (epoch, line) pair: 16 lines, few epochs.
    assert log_writes <= result.total_epochs * 16


def test_bsp_nolog_skips_undo_entries():
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BSP, undo_logging=False,
        barrier_design=BarrierDesign.LB_PP, bsp_epoch_stores=50,
    )
    m = Multicore(config)
    p = Program()
    for i in range(100):
        p.store(0x1000 + (i % 16) * 64, 8)
    result = m.run([p])
    assert result.stats.domain("nvram").get("writes_log") == 0


def test_ep_stalls_at_barriers():
    result = run_model(PersistencyModel.EP)
    assert result.stats.total("ep_barrier_stalls") > 0


def test_durable_time_never_before_visible():
    for model in (PersistencyModel.BEP, PersistencyModel.BSP):
        result = run_model(model)
        assert result.cycles_durable >= result.cycles_visible
