"""Tests for the persistent-heap allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.heap import HeapExhausted, PersistentHeap


def test_allocations_are_line_aligned():
    heap = PersistentHeap(0x1000, 4096, line_size=64)
    for size in (1, 8, 63, 64, 65, 512):
        assert heap.alloc(size) % 64 == 0


def test_allocations_do_not_overlap():
    heap = PersistentHeap(0x1000, 1 << 16, line_size=64)
    spans = []
    for _ in range(32):
        addr = heap.alloc(100)
        spans.append((addr, addr + 128))
    spans.sort()
    for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
        assert a1 <= b0


def test_free_reuses_block():
    heap = PersistentHeap(0x1000, 4096)
    addr = heap.alloc(512)
    heap.free(addr, 512)
    assert heap.alloc(512) == addr


def test_free_lists_are_size_segregated():
    heap = PersistentHeap(0x1000, 1 << 16)
    small = heap.alloc(64)
    heap.free(small, 64)
    big = heap.alloc(512)
    assert big != small


def test_exhaustion_raises():
    heap = PersistentHeap(0x1000, 128, line_size=64)
    heap.alloc(64)
    heap.alloc(64)
    with pytest.raises(HeapExhausted):
        heap.alloc(64)


def test_free_after_exhaustion_allows_alloc():
    heap = PersistentHeap(0x1000, 128, line_size=64)
    a = heap.alloc(64)
    heap.alloc(64)
    heap.free(a, 64)
    assert heap.alloc(64) == a


def test_invalid_arguments():
    with pytest.raises(ValueError):
        PersistentHeap(0x1001, 4096)      # misaligned base
    with pytest.raises(ValueError):
        PersistentHeap(0x1000, 0)
    heap = PersistentHeap(0x1000, 4096)
    with pytest.raises(ValueError):
        heap.alloc(0)
    with pytest.raises(ValueError):
        heap.free(0x0, 64)                # outside the heap


def test_accounting():
    heap = PersistentHeap(0x1000, 4096)
    addr = heap.alloc(100)               # rounds to 128
    assert heap.allocated_bytes == 128
    assert heap.live_objects == 1
    heap.free(addr, 100)
    assert heap.allocated_bytes == 0
    assert heap.live_objects == 0
    assert heap.high_water_mark == 128


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=1024), min_size=1,
                max_size=60))
def test_property_alloc_free_cycles_never_overlap_live_objects(sizes):
    """Any alloc/free interleaving keeps live blocks disjoint."""
    heap = PersistentHeap(0x10000, 1 << 20, line_size=64)
    live = {}
    for i, size in enumerate(sizes):
        addr = heap.alloc(size)
        rounded = ((size + 63) // 64) * 64
        for other, (ostart, olen) in live.items():
            assert addr + rounded <= ostart or ostart + olen <= addr
        live[addr] = (addr, rounded)
        if i % 3 == 2:
            victim = next(iter(live))
            start, length = live.pop(victim)
            heap.free(start, length)
    assert heap.live_objects == len(live)
