"""Fast engine paths vs the pure-heap reference engine.

The two-tier ready queue and the inline-completion fast path claim to be
*observationally identical* to the reference engine selected by
``REPRO_SLOW_ENGINE=1``.  These tests run one small workload per
persistency model both ways and assert:

* identical determinism digests (stats, cycles, NVRAM image, persist
  order -- see :mod:`repro.sim.digest`);
* identical recovery-checker verdicts on a mid-run crash.
"""

import pytest

from repro.harness.bench import (
    _multicore_setup,
    conflict_counters,
    reference_mode,
)
from repro.recovery.checker import ConsistencyViolation, check_epoch_order
from repro.recovery.crash import run_with_crash
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.sim.digest import run_digest, state_digest
from repro.system import Multicore
from repro.workloads.micro import make_benchmark

MODELS = [
    PersistencyModel.NP,
    PersistencyModel.SP,
    PersistencyModel.EP,
    PersistencyModel.BEP,
    PersistencyModel.BSP,
    PersistencyModel.BSP_WT,
]

_TXNS = 10
_CRASH_CYCLE = 3000


def _config(model: PersistencyModel) -> MachineConfig:
    overrides = {}
    if model is PersistencyModel.BSP:
        overrides["bsp_epoch_stores"] = 25
    return MachineConfig.tiny(
        persistency=model, barrier_design=BarrierDesign.LB_IDT, **overrides
    )


def _programs(config: MachineConfig):
    return [
        list(
            make_benchmark(
                "queue", thread_id=tid, seed=7, line_size=config.line_size
            ).ops(_TXNS)
        )
        for tid in range(config.num_cores)
    ]


def _full_run_digest(model: PersistencyModel) -> str:
    config = _config(model)
    machine = Multicore(config, track_values=True, track_persist_order=True)
    result = machine.run(_programs(config))
    return state_digest(machine, result)


def _crash_verdict(model: PersistencyModel):
    """(checker outcome, persist count at crash) for a mid-run crash."""
    config = _config(model)
    machine = Multicore(config, track_values=True, track_persist_order=True,
                        keep_epoch_log=True)
    outcome = run_with_crash(machine, _programs(config), _CRASH_CYCLE)
    try:
        checked = check_epoch_order(outcome)
        return ("ok", checked, outcome.image.persist_count)
    except ConsistencyViolation as exc:
        return ("violation", str(exc), outcome.image.persist_count)


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.value)
def test_digest_matches_reference_engine(model):
    fast = _full_run_digest(model)
    with reference_mode():
        ref = _full_run_digest(model)
    assert fast == ref


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.value)
def test_crash_verdict_matches_reference_engine(model):
    fast = _crash_verdict(model)
    with reference_mode():
        ref = _crash_verdict(model)
    assert fast == ref
    if model in (PersistencyModel.BEP, PersistencyModel.BSP,
                 PersistencyModel.EP):
        # The epoch models must actually pass the ordering check, not
        # merely agree on a verdict.
        assert fast[0] == "ok"


# ----------------------------------------------------------------------
# Multicore conflict-path matrix: contended pingpong from 4 up to 64
# cores, with (LB++) and without (LB) inter-thread dependence tracking.
# This is the regime where the directory fast path, the per-line
# epoch-tag probe, IDT edge interning, and the deadlock-avoiding split
# path all fire; the high-core-count rows additionally cover the
# virtualised handshake broadcast legs at real scale.  The digests
# prove the fast formulations are observationally identical to the
# reference walk.  Transaction counts shrink with core count so the
# matrix stays in the unit-test wall-time band.
# ----------------------------------------------------------------------
MULTICORE_CONFIGS = [
    (4, BarrierDesign.LB),
    (4, BarrierDesign.LB_PP),
    (8, BarrierDesign.LB),
    (8, BarrierDesign.LB_PP),
    (16, BarrierDesign.LB),
    (16, BarrierDesign.LB_PP),
    (32, BarrierDesign.LB),
    (32, BarrierDesign.LB_PP),
    (64, BarrierDesign.LB),
    (64, BarrierDesign.LB_PP),
]

_MULTI_TXNS = 25


def _multi_txns(cores: int) -> int:
    return _MULTI_TXNS if cores <= 8 else max(6, 192 // cores)


@pytest.mark.parametrize(
    "cores,design", MULTICORE_CONFIGS,
    ids=[f"{c}c-{d.value}" for c, d in MULTICORE_CONFIGS],
)
def test_multicore_digest_matches_reference_engine(cores, design):
    config, programs = _multicore_setup(
        seed=3, transactions=_multi_txns(cores),
        num_cores=cores, barrier_design=design,
    )
    fast = run_digest(config, programs)
    with reference_mode():
        ref = run_digest(config, programs)
    assert fast == ref


def test_multicore_conflict_counters_match_reference_engine():
    """Paper-semantics parity on the contended run.

    The digest already covers the full stats dump; this spells out the
    headline claim -- the fast conflict path neither loses nor invents
    inter-thread conflicts, IDT edges, or epoch splits -- and pins that
    the workload actually exercises all three.
    """
    config, programs = _multicore_setup(seed=3, transactions=_MULTI_TXNS)

    def counters(slow):
        with reference_mode(slow):
            machine = Multicore(config)
            result = machine.run(programs)
        return conflict_counters(result.stats)

    fast = counters(False)
    assert fast == counters(True)
    assert fast["inter_thread"] > 0
    assert fast["idt_edges"] > 0
    assert fast["epoch_splits"] > 0


def test_faulted_16core_pingpong_digest_matches_reference():
    """Fault injection at 16 cores: identical digests in both modes.

    Faulted runs keep real per-ack events (the virtual-ack fold is
    fault-free-only), so this pins that the two paths coexist at a core
    count where most banks take the virtual path and the faulted ones
    do not.
    """
    from repro.sim.faults import FaultConfig

    faults = FaultConfig(seed=5, drop_ack_rate=0.25, delay_ack_rate=0.15,
                         mc_stall_rate=0.05)
    config, programs = _multicore_setup(
        seed=3, transactions=8, num_cores=16,
        barrier_design=BarrierDesign.LB_PP,
    )

    def one(slow):
        with reference_mode(slow):
            machine = Multicore(config, faults=faults)
            result = machine.run(programs)
        stats = result.stats
        return (
            result.finished,
            state_digest(machine, result),
            int(stats.total("flush_ack_drops")),
            int(stats.total("flush_ack_retries")),
        )

    fast = one(False)
    assert fast == one(True)
    assert fast[0]
    assert fast[2] > 0  # faults actually fired


def test_fault_coordinates_are_core_count_stable():
    """A fault decision is a pure function of its coordinates.

    The splitmix64 oracle hashes (core, bank, epoch seq, attempt) --
    never the machine's core count or any enumeration order -- so the
    decisions for cores 0..3 must be bit-identical whether they are
    queried alone, inside a 64-core scan, or in reverse order.  This is
    what makes faulted digests comparable across the scaling matrix.
    """
    from repro.sim.faults import FaultConfig, FaultInjector

    cfg = FaultConfig(seed=11, drop_ack_rate=0.3, delay_ack_rate=0.2,
                      mc_stall_rate=0.1)

    def decisions(injector, cores, reverse=False):
        coords = [
            (c, b, s, a)
            for c in range(cores)
            for b in range(4)
            for s in range(3)
            for a in range(2)
        ]
        if reverse:
            coords.reverse()
        return {
            (c, b, s, a): (
                injector.drop_bank_ack(c, b, s, a),
                injector.bank_ack_detour(c, b, s, a),
                injector.mc_stall(b, s),
            )
            for c, b, s, a in coords
        }

    small = decisions(FaultInjector(cfg), 4)
    wide = decisions(FaultInjector(cfg), 64)
    wide_rev = decisions(FaultInjector(cfg), 64, reverse=True)
    assert wide == wide_rev
    assert {k: wide[k] for k in small} == small
    # The oracle must actually be firing at these rates, not vacuously
    # returning "no fault" everywhere.
    assert any(v[0] for v in wide.values())
    assert any(v[1] for v in wide.values())


def test_digest_sensitive_to_run_shape():
    """Different workloads must not collide to one digest."""
    config = _config(PersistencyModel.BEP)
    machine = Multicore(config, track_values=True, track_persist_order=True)
    result = machine.run(_programs(config))
    base = state_digest(machine, result)

    other_cfg = _config(PersistencyModel.BEP)
    other = Multicore(other_cfg, track_values=True, track_persist_order=True)
    programs = [
        list(
            make_benchmark(
                "hash", thread_id=tid, seed=7, line_size=other_cfg.line_size
            ).ops(_TXNS)
        )
        for tid in range(other_cfg.num_cores)
    ]
    assert state_digest(other, other.run(programs)) != base
