"""Fast engine paths vs the pure-heap reference engine.

The two-tier ready queue and the inline-completion fast path claim to be
*observationally identical* to the reference engine selected by
``REPRO_SLOW_ENGINE=1``.  These tests run one small workload per
persistency model both ways and assert:

* identical determinism digests (stats, cycles, NVRAM image, persist
  order -- see :mod:`repro.sim.digest`);
* identical recovery-checker verdicts on a mid-run crash.
"""

import pytest

from repro.harness.bench import (
    _multicore_setup,
    conflict_counters,
    reference_mode,
)
from repro.recovery.checker import ConsistencyViolation, check_epoch_order
from repro.recovery.crash import run_with_crash
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.sim.digest import run_digest, state_digest
from repro.system import Multicore
from repro.workloads.micro import make_benchmark

MODELS = [
    PersistencyModel.NP,
    PersistencyModel.SP,
    PersistencyModel.EP,
    PersistencyModel.BEP,
    PersistencyModel.BSP,
    PersistencyModel.BSP_WT,
]

_TXNS = 10
_CRASH_CYCLE = 3000


def _config(model: PersistencyModel) -> MachineConfig:
    overrides = {}
    if model is PersistencyModel.BSP:
        overrides["bsp_epoch_stores"] = 25
    return MachineConfig.tiny(
        persistency=model, barrier_design=BarrierDesign.LB_IDT, **overrides
    )


def _programs(config: MachineConfig):
    return [
        list(
            make_benchmark(
                "queue", thread_id=tid, seed=7, line_size=config.line_size
            ).ops(_TXNS)
        )
        for tid in range(config.num_cores)
    ]


def _full_run_digest(model: PersistencyModel) -> str:
    config = _config(model)
    machine = Multicore(config, track_values=True, track_persist_order=True)
    result = machine.run(_programs(config))
    return state_digest(machine, result)


def _crash_verdict(model: PersistencyModel):
    """(checker outcome, persist count at crash) for a mid-run crash."""
    config = _config(model)
    machine = Multicore(config, track_values=True, track_persist_order=True,
                        keep_epoch_log=True)
    outcome = run_with_crash(machine, _programs(config), _CRASH_CYCLE)
    try:
        checked = check_epoch_order(outcome)
        return ("ok", checked, outcome.image.persist_count)
    except ConsistencyViolation as exc:
        return ("violation", str(exc), outcome.image.persist_count)


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.value)
def test_digest_matches_reference_engine(model):
    fast = _full_run_digest(model)
    with reference_mode():
        ref = _full_run_digest(model)
    assert fast == ref


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.value)
def test_crash_verdict_matches_reference_engine(model):
    fast = _crash_verdict(model)
    with reference_mode():
        ref = _crash_verdict(model)
    assert fast == ref
    if model in (PersistencyModel.BEP, PersistencyModel.BSP,
                 PersistencyModel.EP):
        # The epoch models must actually pass the ordering check, not
        # merely agree on a verdict.
        assert fast[0] == "ok"


# ----------------------------------------------------------------------
# Multicore conflict-path matrix: contended pingpong at 4 and 8 cores,
# with (LB++) and without (LB) inter-thread dependence tracking.  This
# is the regime where the directory fast path, the per-line epoch-tag
# probe, IDT edge interning, and the deadlock-avoiding split path all
# fire; the digests prove the fast formulations are observationally
# identical to the reference walk.
# ----------------------------------------------------------------------
MULTICORE_CONFIGS = [
    (4, BarrierDesign.LB),
    (4, BarrierDesign.LB_PP),
    (8, BarrierDesign.LB),
    (8, BarrierDesign.LB_PP),
]

_MULTI_TXNS = 25


@pytest.mark.parametrize(
    "cores,design", MULTICORE_CONFIGS,
    ids=[f"{c}c-{d.value}" for c, d in MULTICORE_CONFIGS],
)
def test_multicore_digest_matches_reference_engine(cores, design):
    config, programs = _multicore_setup(
        seed=3, transactions=_MULTI_TXNS,
        num_cores=cores, barrier_design=design,
    )
    fast = run_digest(config, programs)
    with reference_mode():
        ref = run_digest(config, programs)
    assert fast == ref


def test_multicore_conflict_counters_match_reference_engine():
    """Paper-semantics parity on the contended run.

    The digest already covers the full stats dump; this spells out the
    headline claim -- the fast conflict path neither loses nor invents
    inter-thread conflicts, IDT edges, or epoch splits -- and pins that
    the workload actually exercises all three.
    """
    config, programs = _multicore_setup(seed=3, transactions=_MULTI_TXNS)

    def counters(slow):
        with reference_mode(slow):
            machine = Multicore(config)
            result = machine.run(programs)
        return conflict_counters(result.stats)

    fast = counters(False)
    assert fast == counters(True)
    assert fast["inter_thread"] > 0
    assert fast["idt_edges"] > 0
    assert fast["epoch_splits"] > 0


def test_digest_sensitive_to_run_shape():
    """Different workloads must not collide to one digest."""
    config = _config(PersistencyModel.BEP)
    machine = Multicore(config, track_values=True, track_persist_order=True)
    result = machine.run(_programs(config))
    base = state_digest(machine, result)

    other_cfg = _config(PersistencyModel.BEP)
    other = Multicore(other_cfg, track_values=True, track_persist_order=True)
    programs = [
        list(
            make_benchmark(
                "hash", thread_id=tid, seed=7, line_size=other_cfg.line_size
            ).ops(_TXNS)
        )
        for tid in range(other_cfg.num_cores)
    ]
    assert state_digest(other, other.run(programs)) != base
