"""Fast engine paths vs the pure-heap reference engine.

The two-tier ready queue and the inline-completion fast path claim to be
*observationally identical* to the reference engine selected by
``REPRO_SLOW_ENGINE=1``.  These tests run one small workload per
persistency model both ways and assert:

* identical determinism digests (stats, cycles, NVRAM image, persist
  order -- see :mod:`repro.sim.digest`);
* identical recovery-checker verdicts on a mid-run crash.
"""

import pytest

from repro.harness.bench import reference_mode
from repro.recovery.checker import ConsistencyViolation, check_epoch_order
from repro.recovery.crash import run_with_crash
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.sim.digest import state_digest
from repro.system import Multicore
from repro.workloads.micro import make_benchmark

MODELS = [
    PersistencyModel.NP,
    PersistencyModel.SP,
    PersistencyModel.EP,
    PersistencyModel.BEP,
    PersistencyModel.BSP,
    PersistencyModel.BSP_WT,
]

_TXNS = 10
_CRASH_CYCLE = 3000


def _config(model: PersistencyModel) -> MachineConfig:
    overrides = {}
    if model is PersistencyModel.BSP:
        overrides["bsp_epoch_stores"] = 25
    return MachineConfig.tiny(
        persistency=model, barrier_design=BarrierDesign.LB_IDT, **overrides
    )


def _programs(config: MachineConfig):
    return [
        list(
            make_benchmark(
                "queue", thread_id=tid, seed=7, line_size=config.line_size
            ).ops(_TXNS)
        )
        for tid in range(config.num_cores)
    ]


def _full_run_digest(model: PersistencyModel) -> str:
    config = _config(model)
    machine = Multicore(config, track_values=True, track_persist_order=True)
    result = machine.run(_programs(config))
    return state_digest(machine, result)


def _crash_verdict(model: PersistencyModel):
    """(checker outcome, persist count at crash) for a mid-run crash."""
    config = _config(model)
    machine = Multicore(config, track_values=True, track_persist_order=True,
                        keep_epoch_log=True)
    outcome = run_with_crash(machine, _programs(config), _CRASH_CYCLE)
    try:
        checked = check_epoch_order(outcome)
        return ("ok", checked, outcome.image.persist_count)
    except ConsistencyViolation as exc:
        return ("violation", str(exc), outcome.image.persist_count)


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.value)
def test_digest_matches_reference_engine(model):
    fast = _full_run_digest(model)
    with reference_mode():
        ref = _full_run_digest(model)
    assert fast == ref


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.value)
def test_crash_verdict_matches_reference_engine(model):
    fast = _crash_verdict(model)
    with reference_mode():
        ref = _crash_verdict(model)
    assert fast == ref
    if model in (PersistencyModel.BEP, PersistencyModel.BSP,
                 PersistencyModel.EP):
        # The epoch models must actually pass the ordering check, not
        # merely agree on a verdict.
        assert fast[0] == "ok"


def test_digest_sensitive_to_run_shape():
    """Different workloads must not collide to one digest."""
    config = _config(PersistencyModel.BEP)
    machine = Multicore(config, track_values=True, track_persist_order=True)
    result = machine.run(_programs(config))
    base = state_digest(machine, result)

    other_cfg = _config(PersistencyModel.BEP)
    other = Multicore(other_cfg, track_values=True, track_persist_order=True)
    programs = [
        list(
            make_benchmark(
                "hash", thread_id=tid, seed=7, line_size=other_cfg.line_size
            ).ops(_TXNS)
        )
        for tid in range(other_cfg.num_cores)
    ]
    assert state_digest(other, other.run(programs)) != base
